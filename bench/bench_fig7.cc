// Figure 7: decentralized scalability.
//  7a/7b: cluster throughput vs number of local nodes (average / median).
//  7c/7d: per-role throughput while the number of children grows.
//  7e:    per-role throughput vs number of distinct keys (one query each).
//  7f:    per-role throughput vs number of concurrent windows, same key.

#include "harness.h"

namespace desis::bench {
namespace {

std::vector<Query> KeyedQueries(int keys, AggregationFunction fn) {
  std::vector<Query> queries;
  for (int k = 0; k < keys; ++k) {
    Query q;
    q.id = static_cast<QueryId>(k + 1);
    q.window = WindowSpec::Tumbling(1 * kSecond);
    q.agg = {fn, 0.5};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(k));
    queries.push_back(q);
  }
  return queries;
}

std::vector<Query> SameKeyWindows(int n) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {AggregationFunction::kAverage, 0};
    queries.push_back(q);
  }
  return queries;
}

void Fig7ab(AggregationFunction fn, const char* title) {
  PrintHeader(title, {"Desis", "Disco", "Scotty", "CeBuffer"});
  const size_t per_local = Scaled(100'000);
  for (int locals : {1, 2, 4, 8}) {
    std::vector<double> cells;
    for (ClusterSystem system :
         {ClusterSystem::kDesis, ClusterSystem::kDisco, ClusterSystem::kScotty,
          ClusterSystem::kCeBuffer}) {
      auto r = RunDecentralized(system, {locals, 1}, KeyedQueries(10, fn),
                                per_local);
      cells.push_back(r.pipeline_events_per_sec);
    }
    PrintRow(std::to_string(locals) + " locals", cells);
  }
}

void Fig7cd() {
  PrintHeader("Fig 7c: Desis per-role throughput, average (events/s)",
              {"local", "intermediate", "root"});
  for (int locals : {2, 4, 8, 16}) {
    auto r = RunDecentralized(ClusterSystem::kDesis, {locals, 1},
                              KeyedQueries(10, AggregationFunction::kAverage),
                              Scaled(75'000));
    PrintRow(std::to_string(locals) + " children",
             {r.local_events_per_sec, r.intermediate_events_per_sec,
              r.root_events_per_sec});
  }

  PrintHeader("Fig 7d: Desis root throughput, median (events/s)", {"root"});
  for (int locals : {2, 4, 8, 16}) {
    auto r = RunDecentralized(ClusterSystem::kDesis, {locals, 1},
                              KeyedQueries(10, AggregationFunction::kMedian),
                              Scaled(50'000));
    PrintRow(std::to_string(locals) + " children", {r.root_events_per_sec});
  }
}

void Fig7e() {
  PrintHeader("Fig 7e: Desis per-role throughput vs distinct keys (events/s)",
              {"local", "intermediate", "root"});
  for (int keys : {1, 10, 100, 1000}) {
    const size_t per_local =
        std::max<size_t>(Scaled(75'000) / std::max(1, keys / 10), 20'000);
    auto r = RunDecentralized(ClusterSystem::kDesis, {2, 1},
                              KeyedQueries(keys, AggregationFunction::kAverage),
                              per_local, 10, static_cast<uint32_t>(keys));
    PrintRow(std::to_string(keys) + " keys",
             {r.local_events_per_sec, r.intermediate_events_per_sec,
              r.root_events_per_sec});
  }
}

void Fig7f() {
  PrintHeader("Fig 7f: Desis per-role throughput vs windows, same key",
              {"local", "intermediate", "root"});
  for (int windows : {1, 10, 100, 1000}) {
    auto r = RunDecentralized(ClusterSystem::kDesis, {2, 1},
                              SameKeyWindows(windows), Scaled(75'000));
    PrintRow(std::to_string(windows) + " windows",
             {r.local_events_per_sec, r.intermediate_events_per_sec,
              r.root_events_per_sec});
  }
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::Fig7ab(desis::AggregationFunction::kAverage,
                       "Fig 7a: cluster throughput vs local nodes, average");
  desis::bench::Fig7ab(desis::AggregationFunction::kMedian,
                       "Fig 7b: cluster throughput vs local nodes, median");
  desis::bench::Fig7cd();
  desis::bench::Fig7e();
  desis::bench::Fig7f();
  desis::bench::WriteMetricsSidecar("bench_fig7");
  return 0;
}
