// Figure 8: concurrent windows with different window types.
//  8a/8b: tumbling windows (lengths U[1,10]s): throughput + slices/minute.
//  8c/8d: half the windows replaced by user-defined windows.

#include "harness.h"

namespace desis::bench {
namespace {

std::vector<Query> MixedWindows(int n, bool half_user_defined) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    if (half_user_defined && i % 2 == 1) {
      q.window = WindowSpec::UserDefined();
    } else {
      q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    }
    q.agg = {AggregationFunction::kAverage, 0};
    queries.push_back(q);
  }
  return queries;
}

void Sweep(bool half_user_defined, const char* thpt_title,
           const char* slice_title) {
  const std::vector<const char*> systems = {"Desis", "DeSW", "DeBucket",
                                            "CeBuffer"};
  // ~1 user-defined marker per second of event time (paper: 1 ud event/s).
  const double marker_p = half_user_defined ? 0.001 : 0.0;

  DataGeneratorConfig dcfg;
  dcfg.num_keys = 10;
  dcfg.mean_interval = 1 * kMillisecond;  // 1k events/s of event time
  dcfg.marker_probability = marker_p;
  const size_t base = Scaled(300'000);
  auto events = DataGenerator(dcfg).Take(base);

  std::vector<std::vector<double>> thpt_rows;
  std::vector<std::vector<double>> slice_rows;
  const std::vector<int> counts = {1, 10, 100, 1000};
  for (int n : counts) {
    std::vector<double> thpt;
    std::vector<double> slices;
    auto queries = MixedWindows(n, half_user_defined);
    for (const char* name : systems) {
      const bool per_window_cost =
          std::string(name) == "DeBucket" || std::string(name) == "CeBuffer";
      const size_t count = std::min(
          events.size(),
          per_window_cost ? std::max<size_t>(base / std::max(1, n / 5), 50'000)
                          : base);
      std::vector<Event> sample(events.begin(),
                                events.begin() + std::min(count, events.size()));
      auto engine = MakeEngine(name);
      (void)engine->Configure(queries);
      auto r = MeasureThroughput(*engine, sample);
      thpt.push_back(r.events_per_sec);
      // Normalize slices to "per minute of event time".
      const double minutes = static_cast<double>(sample.back().ts) /
                             static_cast<double>(kMinute);
      slices.push_back(static_cast<double>(r.stats.slices_created) /
                       (minutes > 0 ? minutes : 1));
    }
    thpt_rows.push_back(std::move(thpt));
    slice_rows.push_back(std::move(slices));
  }

  PrintHeader(thpt_title, {"Desis", "DeSW", "DeBucket", "CeBuffer"});
  for (size_t i = 0; i < counts.size(); ++i) {
    PrintRow(std::to_string(counts[i]) + " windows", thpt_rows[i]);
  }
  PrintHeader(slice_title, {"Desis", "DeSW", "DeBucket", "CeBuffer"});
  for (size_t i = 0; i < counts.size(); ++i) {
    PrintRow(std::to_string(counts[i]) + " windows", slice_rows[i]);
  }
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::Sweep(false,
                      "Fig 8a: throughput, tumbling windows (events/s)",
                      "Fig 8b: slices per minute, tumbling windows");
  desis::bench::Sweep(true,
                      "Fig 8c: throughput, half user-defined (events/s)",
                      "Fig 8d: slices per minute, half user-defined");
  desis::bench::WriteMetricsSidecar("bench_fig8");
  return 0;
}
