// Figure 11: network overhead by node role (3-node chain: local ->
// intermediate -> root).
//  11a: one average query — bytes sent by local and intermediate nodes.
//  11b: one median query — all systems must move the events.
//  11c: bytes vs number of distinct keys.
//  11d: bytes vs number of concurrent windows (single key).

#include "harness.h"

namespace desis::bench {
namespace {

const std::vector<ClusterSystem> kSystems = {
    ClusterSystem::kDesis, ClusterSystem::kDisco, ClusterSystem::kScotty,
    ClusterSystem::kCeBuffer};

std::vector<Query> KeyedQueries(int keys, AggregationFunction fn) {
  std::vector<Query> queries;
  for (int k = 0; k < keys; ++k) {
    Query q;
    q.id = static_cast<QueryId>(k + 1);
    q.window = WindowSpec::Tumbling(1 * kSecond);
    q.agg = {fn, 0.5};
    q.predicate = keys > 1 ? Predicate::KeyEquals(static_cast<uint32_t>(k))
                           : Predicate::All();
    queries.push_back(q);
  }
  return queries;
}

std::vector<Query> SameKeyWindows(int n, AggregationFunction fn) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {fn, 0.5};
    queries.push_back(q);
  }
  return queries;
}

void Fig11ab(AggregationFunction fn, const char* title) {
  PrintHeader(title, {"local_KB", "intermediate_KB"});
  const size_t events = Scaled(500'000);
  for (ClusterSystem system : kSystems) {
    auto r = RunDecentralized(system, {1, 1}, KeyedQueries(1, fn), events);
    PrintRow(ToString(system), {static_cast<double>(r.local_bytes) / 1e3,
                                static_cast<double>(r.intermediate_bytes) / 1e3});
  }
}

void Fig11c() {
  PrintHeader("Fig 11c: total bytes vs distinct keys (KB)",
              {"Desis", "Disco", "Scotty", "CeBuffer"});
  const size_t events = Scaled(300'000);
  for (int keys : {1, 10, 100}) {
    std::vector<double> cells;
    for (ClusterSystem system : kSystems) {
      auto r = RunDecentralized(system, {1, 1},
                                KeyedQueries(keys, AggregationFunction::kAverage),
                                events, 10, static_cast<uint32_t>(std::max(keys, 1)));
      cells.push_back(
          static_cast<double>(r.local_bytes + r.intermediate_bytes) / 1e3);
    }
    PrintRow(std::to_string(keys) + " keys", cells);
  }
}

void Fig11d() {
  PrintHeader("Fig 11d: total bytes vs concurrent windows, 1 key (KB)",
              {"Desis", "Disco", "Scotty", "CeBuffer"});
  const size_t events = Scaled(300'000);
  for (int windows : {1, 10, 100, 1000}) {
    std::vector<double> cells;
    for (ClusterSystem system : kSystems) {
      auto r = RunDecentralized(
          system, {1, 1}, SameKeyWindows(windows, AggregationFunction::kAverage),
          events, 10, 1);
      cells.push_back(
          static_cast<double>(r.local_bytes + r.intermediate_bytes) / 1e3);
    }
    PrintRow(std::to_string(windows) + " windows", cells);
  }
}

void Fig11Hops() {
  // §6.4.1 (text): centralized overhead grows linearly with intermediate
  // layers; decentralized growth is negligible for decomposable functions.
  PrintHeader("Fig 11 (hops): total bytes vs intermediate layers (KB)",
              {"Desis", "Disco", "Scotty", "CeBuffer"});
  const size_t events = Scaled(300'000);
  for (int layers : {1, 2, 4, 8}) {
    std::vector<double> cells;
    for (ClusterSystem system : kSystems) {
      auto r = RunDecentralized(system, {1, 1, layers},
                                KeyedQueries(1, AggregationFunction::kAverage),
                                events);
      cells.push_back(
          static_cast<double>(r.local_bytes + r.intermediate_bytes) / 1e3);
    }
    PrintRow(std::to_string(layers) + " hops", cells);
  }
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::Fig11ab(desis::AggregationFunction::kAverage,
                        "Fig 11a: bytes by role, 1 average query");
  desis::bench::Fig11ab(desis::AggregationFunction::kMedian,
                        "Fig 11b: bytes by role, 1 median query");
  desis::bench::Fig11c();
  desis::bench::Fig11d();
  desis::bench::Fig11Hops();
  desis::bench::WriteMetricsSidecar("bench_fig11");
  return 0;
}
