// Bounded-memory acceptance bench (docs/EXPERIMENTS.md): a median/quantile
// workload over 100k keys runs once with an effectively unlimited budget to
// meter its uncapped resident peak, then again under budgets of 1/2 and 1/3
// of that peak, and once more on the t-digest sketch lane. The acceptance
// contract is checked in-process and the bench exits non-zero on violation:
// every capped run must produce the byte-identical window set while its
// governor's resident peak stays at or under the budget (with real spill
// traffic, or none at all for the sketch lane, whose per-slice state is
// O(compression)).
//
// The budgets derive from the metered peak rather than fixed byte counts so
// the contract holds at any DESIS_BENCH_SCALE — the regression gate runs at
// scale 0.01 against a committed baseline of the deterministic counters
// (events, results, spills, spill bytes, restores; wall-clock series are
// auto-skipped by stable-only diffs).

#include "harness.h"
#include "mem/memory_governor.h"

namespace desis::bench {
namespace {

// Fixed event-time extent: scaling changes density, not the slice layout,
// so per-slice state shrinks with the event count and the derived budgets
// track it.
constexpr Timestamp kTicks = 32000;
constexpr uint32_t kKeys = 100000;

/// Ingest batch size: each batch is one governor charge delta, and relief
/// only guarantees peak <= budget when single deltas fit the quarter of
/// headroom above the soft limit — so scaled-down runs (whose derived
/// budgets shrink with the event count) use proportionally smaller batches.
size_t IngestBatchSize(size_t num_events) {
  return std::clamp<size_t>(num_events / 256, 64, 256);
}

std::vector<Query> MemoryQueries(bool approx) {
  std::vector<Query> queries(4);
  queries[0].id = 1;
  queries[0].window = WindowSpec::Tumbling(2000);
  queries[0].agg = {AggregationFunction::kQuantile, 0.9, approx};
  queries[0].predicate = Predicate::ValueRange(0.0, 50.0);
  queries[1].id = 2;
  queries[1].window = WindowSpec::Tumbling(16000);
  queries[1].agg = {AggregationFunction::kMedian, 0.5, approx};
  queries[1].predicate = Predicate::ValueRange(0.0, 50.0);
  queries[2].id = 3;
  queries[2].window = WindowSpec::Tumbling(2000);
  queries[2].agg = {AggregationFunction::kQuantile, 0.25, approx};
  queries[2].predicate = Predicate::ValueRange(50.0, 100.0);
  queries[3].id = 4;
  queries[3].window = WindowSpec::Tumbling(16000);
  queries[3].agg = {AggregationFunction::kMedian, 0.5, approx};
  queries[3].predicate = Predicate::ValueRange(50.0, 100.0);
  return queries;
}

Event WorkloadEvent(size_t i, size_t n) {
  Event e;
  e.ts = static_cast<Timestamp>((i * static_cast<size_t>(kTicks)) / n);
  e.key = static_cast<uint32_t>(i % kKeys);
  e.value = static_cast<double>((i * 7919) % 10000) / 100.0;  // [0, 100)
  return e;
}

uint64_t Fingerprint(const std::vector<WindowResult>& results) {
  uint64_t h = 0xCBF29CE484222325ull;
  const auto fold = [&h](const void* data, size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
  };
  for (const WindowResult& r : results) {
    fold(&r.query_id, sizeof(r.query_id));
    fold(&r.window_start, sizeof(r.window_start));
    fold(&r.window_end, sizeof(r.window_end));
    fold(&r.value, sizeof(r.value));
    fold(&r.event_count, sizeof(r.event_count));
  }
  return h;
}

struct RunOutcome {
  std::vector<WindowResult> results;
  uint64_t fingerprint = 0;
  uint64_t peak_resident = 0;
  uint64_t spills = 0;
  uint64_t spill_bytes = 0;
  uint64_t restores = 0;
  double events_per_sec = 0;
};

RunOutcome RunGoverned(const std::string& label, uint64_t budget_bytes,
                       bool approx, size_t num_events) {
  mem::MemoryOptions options;
  options.budget_bytes = budget_bytes;
  // Scaled-down runs (the CI gate pins scale 0.01) have per-slice lanes of
  // a few KB; keep them spill-eligible so the contract is exercised there.
  options.min_spill_bytes = 256;
  options.spill_dir = ".desis_spill";

  DesisEngine engine;
  engine.EnableMemoryBudget(options);
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  if (auto status = engine.Configure(MemoryQueries(approx)); !status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  engine.set_metrics_registry(&registry);
  engine.set_tracer(&tracer);

  RunOutcome out;
  engine.set_sink(
      [&](const WindowResult& r) { out.results.push_back(r); });

  const size_t ingest_batch = IngestBatchSize(num_events);
  std::vector<Event> batch;
  batch.reserve(ingest_batch);
  const int64_t t0 = NowNs();
  for (size_t i = 0; i < num_events; ++i) {
    batch.push_back(WorkloadEvent(i, num_events));
    if (batch.size() == ingest_batch) {
      engine.IngestBatch(batch.data(), batch.size());
      if ((i + 1) % (ingest_batch * 16) == 0) {
        engine.AdvanceTo(batch.back().ts);
      }
      batch.clear();
    }
  }
  if (!batch.empty()) engine.IngestBatch(batch.data(), batch.size());
  engine.Finish();
  const int64_t elapsed = NowNs() - t0;

  const mem::MemoryGovernor* gov = engine.memory_governor();
  out.fingerprint = Fingerprint(out.results);
  out.peak_resident = gov->peak_resident();
  out.spills = gov->spills();
  out.spill_bytes = gov->spill_bytes();
  out.restores = gov->restores();
  out.events_per_sec = elapsed > 0 ? static_cast<double>(num_events) * 1e9 /
                                         static_cast<double>(elapsed)
                                   : 0;

  char report[512];
  std::snprintf(
      report, sizeof(report),
      "{\"system\":\"Desis\",\"events\":%zu,\"results\":%zu,"
      "\"budget_bytes\":%llu,\"peak_resident\":%llu,\"spills\":%llu,"
      "\"spill_bytes\":%llu,\"restores\":%llu,\"sketch\":%d,"
      "\"events_per_sec\":%.1f,",
      num_events, out.results.size(),
      static_cast<unsigned long long>(budget_bytes),
      static_cast<unsigned long long>(out.peak_resident),
      static_cast<unsigned long long>(out.spills),
      static_cast<unsigned long long>(out.spill_bytes),
      static_cast<unsigned long long>(out.restores), approx ? 1 : 0,
      out.events_per_sec);
  std::string report_json = report;
  report_json += "\"engine\":" + EngineStatsJson(engine.stats());
  report_json += ",\"obs\":{\"metrics\":" + registry.ToJson() + "}}";
  Sidecar::Instance().NoteEngineShards(0);
  Sidecar::Instance().RecordRun(label, report_json, tracer.ToJson());
  return out;
}

int Main() {
  const size_t num_events = Scaled(512 * 1024);

  // Meter the workload's natural peak first: a budget far above any
  // plausible footprint keeps accounting on without ever triggering
  // relief, so this run is governance-free in behaviour.
  const RunOutcome uncapped =
      RunGoverned("uncapped", uint64_t{1} << 40, /*approx=*/false,
                  num_events);

  int failures = 0;
  if (uncapped.results.empty()) {
    std::fprintf(stderr, "FAIL: uncapped run produced no windows\n");
    ++failures;
  }
  if (uncapped.spills != 0) {
    std::fprintf(stderr, "FAIL: uncapped run spilled\n");
    ++failures;
  }

  PrintHeader("Memory cap: governed vs uncapped, median/quantile @ 100k keys",
              {"budget_kb", "peak_kb", "spills", "spill_kb", "restores"});
  PrintRow("uncapped", {0.0,
                        static_cast<double>(uncapped.peak_resident) / 1024.0,
                        0.0, 0.0, 0.0});

  for (const uint64_t divisor : {uint64_t{2}, uint64_t{3}}) {
    const uint64_t budget = uncapped.peak_resident / divisor;
    const std::string label = "capped 1/" + std::to_string(divisor);
    const RunOutcome capped =
        RunGoverned(label, budget, /*approx=*/false, num_events);
    PrintRow(label,
             {static_cast<double>(budget) / 1024.0,
              static_cast<double>(capped.peak_resident) / 1024.0,
              static_cast<double>(capped.spills),
              static_cast<double>(capped.spill_bytes) / 1024.0,
              static_cast<double>(capped.restores)});
    if (capped.fingerprint != uncapped.fingerprint ||
        capped.results.size() != uncapped.results.size()) {
      std::fprintf(stderr,
                   "FAIL: '%s' diverged from the uncapped window set\n",
                   label.c_str());
      ++failures;
    }
    if (capped.spills == 0) {
      std::fprintf(stderr, "FAIL: '%s' never spilled\n", label.c_str());
      ++failures;
    }
    if (capped.restores == 0) {
      std::fprintf(stderr, "FAIL: '%s' never merged a cold run\n",
                   label.c_str());
      ++failures;
    }
    if (capped.peak_resident > budget) {
      std::fprintf(stderr,
                   "FAIL: '%s' peak resident %llu exceeded budget %llu\n",
                   label.c_str(),
                   static_cast<unsigned long long>(capped.peak_resident),
                   static_cast<unsigned long long>(budget));
      ++failures;
    }
  }

  // Sketch lane: constant per-slice state fits a budget the exact sort
  // buffers blow through, without any spilling; values are near-uniform on
  // [0,100), so the documented <1.6% rank error bounds the value error.
  // The floor covers the digests' fixed buffer capacity, which does not
  // shrink with the event count the way the sort buffers do.
  {
    const uint64_t budget = std::max<uint64_t>(
        uncapped.peak_resident / 8, uint64_t{192} * 1024);
    const RunOutcome sketch =
        RunGoverned("sketch", budget, /*approx=*/true, num_events);
    PrintRow("sketch",
             {static_cast<double>(budget) / 1024.0,
              static_cast<double>(sketch.peak_resident) / 1024.0,
              static_cast<double>(sketch.spills),
              static_cast<double>(sketch.spill_bytes) / 1024.0,
              static_cast<double>(sketch.restores)});
    if (sketch.results.size() != uncapped.results.size()) {
      std::fprintf(stderr, "FAIL: sketch run changed the window count\n");
      ++failures;
    } else {
      double worst = 0;
      for (size_t i = 0; i < sketch.results.size(); ++i) {
        worst = std::max(worst, std::abs(sketch.results[i].value -
                                         uncapped.results[i].value));
      }
      if (worst > 4.0) {
        std::fprintf(stderr,
                     "FAIL: sketch quantiles drifted %.2f from exact\n",
                     worst);
        ++failures;
      }
    }
    if (sketch.spills != 0) {
      std::fprintf(stderr, "FAIL: sketch lane spilled\n");
      ++failures;
    }
    if (sketch.peak_resident > budget) {
      std::fprintf(stderr, "FAIL: sketch peak exceeded its budget\n");
      ++failures;
    }
  }

  WriteMetricsSidecar("bench_memory_cap");
  if (failures == 0) std::printf("all memory-cap contracts held\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace desis::bench

int main() { return desis::bench::Main(); }
