// Figure 13: real-world setup.
//  13a: throughput vs number of random queries (mixed keys, types,
//       measures, decomposable functions, lengths).
//  13b/13c/13d: Raspberry-Pi cluster model — per-link bandwidth cap
//       (1G Ethernet) and a CPU slowdown factor folded into the pipeline
//       model (see DESIGN.md).

#include "harness.h"

namespace desis::bench {
namespace {

std::vector<Query> RandomQueries(int n, uint64_t seed) {
  QueryGeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_keys = 10;
  cfg.window_types = {WindowType::kTumbling, WindowType::kSliding,
                      WindowType::kSession, WindowType::kUserDefined};
  cfg.functions = {AggregationFunction::kSum, AggregationFunction::kCount,
                   AggregationFunction::kAverage, AggregationFunction::kMin,
                   AggregationFunction::kMax};
  cfg.count_measure_probability = 0.2;
  cfg.min_count = 10'000;
  cfg.max_count = 100'000;
  return QueryGenerator(cfg).Take(static_cast<size_t>(n));
}

void Fig13a() {
  PrintHeader("Fig 13a: throughput vs random queries (events/s)",
              {"Desis", "DeSW", "DeBucket", "CeBuffer"});
  DataGeneratorConfig dcfg;
  dcfg.num_keys = 10;
  dcfg.marker_probability = 0.001;
  dcfg.gap_probability = 0.0005;
  dcfg.gap_length = 1500 * kMillisecond;
  dcfg.mean_interval = 100;  // 10k events/s of event time
  const size_t base = Scaled(300'000);
  auto events = DataGenerator(dcfg).Take(base);

  for (int n : {1, 10, 100, 1000, 10'000, 100'000}) {
    std::vector<double> cells;
    auto queries = RandomQueries(n, static_cast<uint64_t>(n) + 7);
    for (const char* name : {"Desis", "DeSW", "DeBucket", "CeBuffer"}) {
      const bool per_window_cost =
          std::string(name) == "DeBucket" || std::string(name) == "CeBuffer";
      if (per_window_cost && n > 1000) {
        cells.push_back(-1);  // intractable: O(queries) work per event
        continue;
      }
      if (std::string(name) == "DeSW" && n >= 100'000) {
        // DeSW re-checks every distinct window spec per event; at 100k
        // distinct specs that is intractable (the sharing limitation the
        // figure demonstrates).
        cells.push_back(-1);
        continue;
      }
      // Result materialization dominates at high query counts (the paper
      // reports the same effect past 10k queries); sample fewer events
      // there — throughput remains a per-event-cost measure.
      const size_t divisor = n >= 100'000 ? 100 : n >= 10'000 ? 20 : 1;
      const size_t count = std::min(
          events.size(),
          per_window_cost ? std::max<size_t>(base / std::max(1, n / 5), 20'000)
                          : std::max<size_t>(base / divisor, 10'000));
      std::vector<Event> sample(events.begin(),
                                events.begin() + std::min(count, events.size()));
      auto engine = MakeEngine(name);
      (void)engine->Configure(queries);
      cells.push_back(MeasureThroughput(*engine, sample).events_per_sec);
    }
    PrintRow(std::to_string(n) + " queries", cells);
  }
}

// Raspberry-Pi deployment model: the wall time of a run is bounded by the
// slowest node's CPU (slowed down vs the Xeon) and by the root's 1G link.
constexpr double kPiBandwidthBytesPerSec = 125e6;  // 1G Ethernet
constexpr double kPiCpuSlowdown = 3.0;

struct PiModel {
  double throughput;
  double root_link_mb_per_sec;
};

PiModel PiRun(ClusterSystem system, int locals,
              const std::vector<Query>& queries, size_t per_local) {
  auto r = RunDecentralized(system, {locals, 1}, queries, per_local);
  const double cpu_wall =
      static_cast<double>(r.max_busy_ns) / 1e9 * kPiCpuSlowdown;
  const double net_wall =
      static_cast<double>(r.root_rx_bytes) / kPiBandwidthBytesPerSec;
  const double wall = std::max(cpu_wall, net_wall);
  PiModel out;
  out.throughput =
      wall <= 0 ? 0 : static_cast<double>(r.total_events) / wall;
  out.root_link_mb_per_sec =
      wall <= 0 ? 0 : static_cast<double>(r.root_rx_bytes) / 1e6 / wall;
  return out;
}

void Fig13bcd() {
  std::vector<Query> queries;
  for (int k = 0; k < 10; ++k) {
    Query q;
    q.id = static_cast<QueryId>(k + 1);
    q.window = WindowSpec::Tumbling(1 * kSecond);
    q.agg = {AggregationFunction::kAverage, 0};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(k));
    queries.push_back(q);
  }
  const size_t per_local = Scaled(100'000);

  PrintHeader("Fig 13b: Pi-cluster throughput vs nodes (events/s)",
              {"Desis", "Disco", "Scotty", "CeBuffer"});
  std::vector<std::vector<double>> link_rows;
  for (int locals : {1, 2, 4, 8}) {
    std::vector<double> thpt;
    std::vector<double> link;
    for (ClusterSystem system :
         {ClusterSystem::kDesis, ClusterSystem::kDisco, ClusterSystem::kScotty,
          ClusterSystem::kCeBuffer}) {
      PiModel m = PiRun(system, locals, queries, per_local);
      thpt.push_back(m.throughput);
      link.push_back(m.root_link_mb_per_sec);
    }
    PrintRow(std::to_string(locals) + " Pis", thpt);
    link_rows.push_back(std::move(link));
  }

  PrintHeader("Fig 13c: root-link traffic (MB/s)",
              {"Desis", "Disco", "Scotty", "CeBuffer"});
  int idx = 0;
  for (int locals : {1, 2, 4, 8}) {
    PrintRow(std::to_string(locals) + " Pis", link_rows[idx++]);
  }

  PrintHeader("Fig 13d: per-role latency on Pi cluster (us/result)",
              {"local_us", "intermediate_us", "root_us"});
  for (ClusterSystem system :
       {ClusterSystem::kDesis, ClusterSystem::kDisco, ClusterSystem::kScotty,
        ClusterSystem::kCeBuffer}) {
    auto r = RunDecentralized(system, {2, 1}, queries, per_local);
    PrintRow(ToString(system),
             {r.local_us_per_result * kPiCpuSlowdown,
              r.intermediate_us_per_result * kPiCpuSlowdown,
              r.root_us_per_result * kPiCpuSlowdown});
  }
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::Fig13a();
  desis::bench::Fig13bcd();
  desis::bench::WriteMetricsSidecar("bench_fig13");
  return 0;
}
