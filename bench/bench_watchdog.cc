// Watchdog acceptance suite (docs/FAULT_TOLERANCE.md "Automatic failure
// detection", docs/EXPERIMENTS.md): silently severs one intermediate's
// links mid-stream — no driver ever calls RecoverSilentIntermediates — and
// requires the background health watchdog alone to notice the silence,
// raise a silent_node anomaly, and auto-invoke crash recovery, after which
// the run must still produce the byte-identical canonical window set of an
// undisturbed baseline (zero lost, zero duplicated windows).
//
// The schedule deliberately contains no kSweepRecover action: detection is
// the watchdog thread's job. Rounds pause round_sleep_ms of real time so
// the sampler (period_ms cadence) can observe the freeze between
// virtual-time rounds; the post-fault tail of the stream leaves two orders
// of magnitude more real time than the detection latency
// (period_ms * silence_threshold), so scheduler jitter cannot starve it.
//
// Every node's flight recorder is dumped at the end (into
// $DESIS_FLIGHT_DUMP_DIR, default ".") so `desis_inspect postmortem
// flight-*.json` can reconstruct the merged timeline: watermark motion into
// the fault, the silent_node anomaly, then the reattach/replay recovery
// window. CI's postmortem-smoke job runs exactly that. Self-checking: exits
// non-zero when detection, recovery, or exactness fails.

#include "harness.h"
#include "net/chaos.h"
#include "transport/sim_link_transport.h"

namespace desis::bench {
namespace {

#if DESIS_OBS_ENABLED

std::vector<Query> WatchdogQueries() {
  Query sum;
  sum.id = 1;
  sum.window = WindowSpec::Tumbling(1000);
  sum.agg = {AggregationFunction::kSum, 0};
  Query avg;
  avg.id = 2;
  avg.window = WindowSpec::Tumbling(2000);
  avg.agg = {AggregationFunction::kAverage, 0};
  return {sum, avg};
}

struct WatchdogOutcome {
  std::string canonical;
  uint64_t reattaches = 0;
  uint64_t replayed = 0;
  uint64_t samples = 0;
  uint64_t anomalies = 0;
  uint64_t auto_recoveries = 0;
  std::vector<std::string> dumps;
};

WatchdogOutcome RunSchedule(const std::string& label,
                            const ChaosSchedule& schedule,
                            const ChaosStreamConfig& cfg,
                            const obs::WatchdogOptions& watchdog) {
  ClusterOptions options;
  options.recovery.enabled = true;
  options.watchdog = watchdog;
  // Declared before the cluster: the watchdog thread publishes into the
  // registry until the cluster's destructor joins it.
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  Cluster cluster(ClusterSystem::kDesis, {4, 2, 1}, options);
  SimLinkConfig link;
  link.latency_us = 20;
  link.seed = 99;
  cluster.set_transport(std::make_unique<SimLinkTransport>(link));
  cluster.AttachObs(&registry, &tracer);
  ChaosResultLog log;
  cluster.set_sink(log.Sink());
  if (auto status = cluster.Configure(WatchdogQueries()); !status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  ChaosRunner(&cluster, cfg).Run(schedule);

  WatchdogOutcome out;
  out.canonical = log.Canonical();
  out.reattaches = cluster.recovery_reattaches();
  out.replayed = cluster.recovery_replayed();
  out.samples = cluster.watchdog_samples();
  out.anomalies = cluster.watchdog_anomalies();
  out.auto_recoveries = cluster.watchdog_auto_recoveries();
  if (watchdog.enabled) {
    // Final snapshot for the postmortem job: unlike the automatic dump at
    // anomaly time, this one also holds the reattach/replay events the
    // recovery appended afterwards.
    const char* dir = std::getenv("DESIS_FLIGHT_DUMP_DIR");
    out.dumps =
        cluster.DumpFlightRecorders(dir != nullptr ? dir : ".", "on_demand");
  }
  Sidecar::Instance().NoteTransport(cluster.transport()->name());
  Sidecar::Instance().NoteEngineShards(options.engine_shards);
  Sidecar::Instance().NoteWatchdog(watchdog);
  Sidecar::Instance().RecordRun(label, cluster.StatsReport(), tracer.ToJson());
  return out;
}

int Main() {
  ChaosStreamConfig cfg;
  cfg.end = 20'000;

  obs::WatchdogOptions watchdog;
  watchdog.enabled = true;
  watchdog.period_ms = 10;
  watchdog.silence_threshold = 3;
  watchdog.auto_recover = true;

  // Baseline: undisturbed, watchdog off, no real-time pauses. The disturbed
  // run's exactness target.
  const WatchdogOutcome baseline =
      RunSchedule("baseline", {}, cfg, obs::WatchdogOptions{});
  if (baseline.canonical.empty()) {
    std::fprintf(stderr, "FAIL: baseline produced no windows\n");
    return 1;
  }

  // Disturbed: transport-only silent kill at mid-stream. 24 post-fault
  // rounds x round_sleep_ms real time dwarf the ~30ms detection latency.
  ChaosStreamConfig disturbed_cfg = cfg;
  disturbed_cfg.round_sleep_ms = 20;
  ChaosSchedule kill;
  kill.actions.push_back(
      {ChaosAction::Kind::kSilentKillIntermediate, 8'000, 0});
  const WatchdogOutcome out =
      RunSchedule("silent kill, watchdog recovery", kill, disturbed_cfg,
                  watchdog);

  PrintHeader("Watchdog: silent intermediate kill, zero driver recovery "
              "calls, topology {4,2,1}",
              {"samples", "anomalies", "auto_recov", "reattaches",
               "replayed"});
  PrintRow("disturbed", {static_cast<double>(out.samples),
                         static_cast<double>(out.anomalies),
                         static_cast<double>(out.auto_recoveries),
                         static_cast<double>(out.reattaches),
                         static_cast<double>(out.replayed)});

  int failures = 0;
  if (out.anomalies == 0) {
    std::fprintf(stderr, "FAIL: watchdog never raised an anomaly\n");
    ++failures;
  }
  if (out.auto_recoveries == 0) {
    std::fprintf(stderr,
                 "FAIL: watchdog never auto-recovered the silent node\n");
    ++failures;
  }
  if (out.reattaches == 0) {
    std::fprintf(stderr, "FAIL: recovery never reattached an orphan\n");
    ++failures;
  }
  if (!ChaosRunsMatch(baseline.canonical, out.canonical)) {
    std::fprintf(stderr,
                 "FAIL: watchdog-recovered run diverged from the "
                 "undisturbed baseline (lost or duplicated windows)\n");
    ++failures;
  }
  if (out.dumps.empty()) {
    std::fprintf(stderr, "FAIL: no flight-recorder dumps written\n");
    ++failures;
  }
  for (const std::string& path : out.dumps) {
    std::printf("flight dump: %s\n", path.c_str());
  }

  WriteMetricsSidecar("bench_watchdog");
  if (failures == 0) std::printf("all watchdog contracts held\n");
  return failures == 0 ? 0 : 1;
}

#else  // !DESIS_OBS_ENABLED

int Main() {
  std::printf("watchdog bench skipped: DESIS_OBS=OFF compiles the health "
              "monitor away\n");
  return 0;
}

#endif  // DESIS_OBS_ENABLED

}  // namespace
}  // namespace desis::bench

int main() { return desis::bench::Main(); }
