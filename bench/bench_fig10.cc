// Figure 10: effect of slice count and slice size (count-based windows).
//  10a/10b: vary slices per window (fixed slice size): throughput, latency.
//  10c/10d: vary slice size (fixed slices per window): throughput, latency.

#include "harness.h"

namespace desis::bench {
namespace {

const std::vector<const char*> kSystems = {"Desis", "DeSW", "DeBucket",
                                           "CeBuffer"};

// Count-sliding window: length = slices*slice_size, slide = slice_size —
// the slicer cuts exactly `slices` slices per window.
Query SlicedCountWindow(int64_t slices, int64_t slice_size) {
  Query q;
  q.id = 1;
  q.window = WindowSpec::CountSliding(slices * slice_size, slice_size);
  q.agg = {AggregationFunction::kAverage, 0};
  return q;
}

void Sweep(const char* thpt_title, const char* lat_title,
           const std::vector<std::pair<int64_t, int64_t>>& points,
           const char* label_suffix) {
  std::vector<std::vector<double>> thpt_rows;
  std::vector<std::vector<double>> lat_rows;
  for (auto [slices, slice_size] : points) {
    std::vector<double> thpt;
    std::vector<double> lat;
    const size_t window = static_cast<size_t>(slices * slice_size);
    const size_t count = std::max(Scaled(300'000), window * 2 + 100'000);
    DataGeneratorConfig dcfg;
    auto events = DataGenerator(dcfg).Take(count);
    for (const char* name : kSystems) {
      const bool per_window_cost =
          std::string(name) == "DeBucket" || std::string(name) == "CeBuffer";
      // These engines hold `slices` open windows and touch each per event.
      size_t n = count;
      if (per_window_cost && slices > 100) {
        n = std::max(window * 2 + 50'000, static_cast<size_t>(200'000));
      }
      std::vector<Event> sample(events.begin(), events.begin() + std::min(n, count));
      {
        auto engine = MakeEngine(name);
        (void)engine->Configure({SlicedCountWindow(slices, slice_size)});
        thpt.push_back(MeasureThroughput(*engine, sample).events_per_sec);
      }
      {
        auto engine = MakeEngine(name);
        (void)engine->Configure({SlicedCountWindow(slices, slice_size)});
        lat.push_back(MeasureFireLatency(*engine, sample).avg_us);
      }
    }
    thpt_rows.push_back(std::move(thpt));
    lat_rows.push_back(std::move(lat));
  }
  PrintHeader(thpt_title, {"Desis", "DeSW", "DeBucket", "CeBuffer"});
  for (size_t i = 0; i < points.size(); ++i) {
    PrintRow(std::to_string(points[i].first) + label_suffix, thpt_rows[i]);
  }
  PrintHeader(lat_title, {"Desis", "DeSW", "DeBucket", "CeBuffer"});
  for (size_t i = 0; i < points.size(); ++i) {
    PrintRow(std::to_string(points[i].first) + label_suffix, lat_rows[i]);
  }
}

}  // namespace
}  // namespace desis::bench

int main() {
  // 10a/b: slice size fixed at 1k events (paper: 10k; scaled for runtime),
  // slices per window 1..1000.
  desis::bench::Sweep(
      "Fig 10a: throughput vs slices per window (events/s)",
      "Fig 10b: result latency vs slices per window (us)",
      {{1, 1000}, {10, 1000}, {100, 1000}, {1000, 1000}}, " slices");
  // 10c/d: 100 slices per window (paper: 1k; scaled), slice size 10..10k.
  std::vector<std::pair<int64_t, int64_t>> size_points = {
      {100, 10}, {100, 100}, {100, 1000}, {100, 10000}};
  std::vector<std::vector<double>> thpt;
  // Reuse Sweep with labels on the slice size instead.
  desis::bench::PrintHeader(
      "Fig 10c/10d: throughput (events/s) and latency (us) vs slice size",
      {"thpt:Desis", "thpt:DeSW", "thpt:DeBucket", "thpt:CeBuffer",
       "lat:Desis", "lat:DeSW", "lat:DeBucket", "lat:CeBuffer"});
  for (auto [slices, slice_size] : size_points) {
    std::vector<double> cells;
    const size_t window = static_cast<size_t>(slices * slice_size);
    const size_t count =
        std::max(desis::bench::Scaled(300'000), window * 2 + 100'000);
    desis::DataGeneratorConfig dcfg;
    auto events = desis::DataGenerator(dcfg).Take(count);
    std::vector<double> lat_cells;
    for (const char* name : {"Desis", "DeSW", "DeBucket", "CeBuffer"}) {
      auto engine = desis::bench::MakeEngine(name);
      desis::Query q;
      q.id = 1;
      q.window = desis::WindowSpec::CountSliding(slices * slice_size, slice_size);
      q.agg = {desis::AggregationFunction::kAverage, 0};
      (void)engine->Configure({q});
      cells.push_back(
          desis::bench::MeasureThroughput(*engine, events).events_per_sec);
      auto engine2 = desis::bench::MakeEngine(name);
      (void)engine2->Configure({q});
      lat_cells.push_back(
          desis::bench::MeasureFireLatency(*engine2, events).avg_us);
    }
    cells.insert(cells.end(), lat_cells.begin(), lat_cells.end());
    desis::bench::PrintRow(std::to_string(slice_size) + " ev/slice", cells);
  }
  desis::bench::WriteMetricsSidecar("bench_fig10");
  return 0;
}
