// Microbenchmarks (google-benchmark) for the engine's primitives: operator
// folds, partial merges, serialization, slicing, query-group formation,
// and the key-sharded engine's ingest scaling.

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>

#include "common/serde.h"
#include "core/engine.h"
#include "core/operators.h"
#include "core/query_analyzer.h"
#include "core/sharded_engine.h"
#include "gen/data_generator.h"
#include "harness.h"

namespace desis {
namespace {

void BM_OperatorAdd(benchmark::State& state) {
  const OperatorMask mask = static_cast<OperatorMask>(state.range(0));
  PartialAggregate agg(mask);
  double v = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Add(v));
    v += 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperatorAdd)
    ->Arg(MaskOf(OperatorKind::kSum))
    ->Arg(MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount))
    ->Arg(MaskOf(OperatorKind::kDecomposableSort))
    ->Arg(MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
          MaskOf(OperatorKind::kMultiply) |
          MaskOf(OperatorKind::kDecomposableSort));

void BM_PartialMerge(benchmark::State& state) {
  const OperatorMask mask =
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kDecomposableSort);
  PartialAggregate a(mask);
  PartialAggregate b(mask);
  for (int i = 0; i < 100; ++i) {
    a.Add(i);
    b.Add(i * 2);
  }
  a.Seal();
  b.Seal();
  for (auto _ : state) {
    PartialAggregate acc = a;
    acc.Merge(b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PartialMerge);

void BM_SortedMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SortedState a;
  SortedState b;
  for (int i = 0; i < n; ++i) {
    a.Add(static_cast<double>((i * 7) % n));
    b.Add(static_cast<double>((i * 13) % n));
  }
  a.Seal();
  b.Seal();
  for (auto _ : state) {
    SortedState acc = a;
    acc.Merge(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SortedMerge)->Arg(100)->Arg(10000);

void BM_PartialSerialize(benchmark::State& state) {
  PartialAggregate agg(MaskOf(OperatorKind::kSum) |
                       MaskOf(OperatorKind::kCount) |
                       MaskOf(OperatorKind::kDecomposableSort));
  for (int i = 0; i < 16; ++i) agg.Add(i);
  agg.Seal();
  for (auto _ : state) {
    ByteWriter out;
    agg.SerializeTo(out);
    ByteReader in(out.bytes());
    benchmark::DoNotOptimize(PartialAggregate::DeserializeFrom(in));
  }
}
BENCHMARK(BM_PartialSerialize);

void BM_SlicerIngest(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kAverage
                        : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  DesisEngine engine;
  (void)engine.Configure(queries);
  DataGeneratorConfig cfg;
  auto events = DataGenerator(cfg).Take(1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    engine.Ingest(events[i & (events.size() - 1)]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlicerIngest)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

// Multi-query tumbling+sliding time-window workload for the batched-ingest
// throughput comparison: all specs are fixed-size time windows, so the
// slicer's run-based fast path applies end to end.
std::vector<Query> ThroughputQueries() {
  std::vector<Query> queries;
  QueryId id = 1;
  for (int i = 0; i < 4; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Tumbling((i + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kAverage
                        : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  for (int i = 0; i < 4; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Sliding(2 * (i + 1) * kSecond, 500 * kMillisecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kMax : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  return queries;
}

/// Accumulated batch-1024 ingest timings with and without a flight
/// recorder attached, for the recorder-overhead self-check (the recorder
/// only sees control-plane events — slice seals, watermark moves — so its
/// cost must vanish in the per-event noise; docs/METRICS.md).
struct RecorderOverheadSample {
  int64_t timed_ns = 0;
  int64_t events = 0;
};

RecorderOverheadSample& RecorderSample(bool with_recorder) {
  static RecorderOverheadSample samples[2];
  return samples[with_recorder ? 1 : 0];
}

constexpr size_t kOverheadProbeBatch = 1024;

// Feeds the same 128k-event stream through a fresh Desis engine per
// iteration; batch == 0 uses the per-event Ingest() path, otherwise
// IngestBatch() in `batch`-sized chunks. `with_recorder` attaches a
// per-iteration flight recorder (the overhead probe pair at batch 1024).
void IngestThroughput(benchmark::State& state, size_t batch,
                      bool with_recorder = false) {
  DataGeneratorConfig cfg;
  const std::vector<Event> events = DataGenerator(cfg).Take(1 << 17);
  const std::vector<Query> queries = ThroughputQueries();
  for (auto _ : state) {
    state.PauseTiming();
    DesisEngine engine;
    obs::FlightRecorder recorder;
    if (with_recorder) engine.set_flight_recorder(&recorder);
    (void)engine.Configure(queries);
    state.ResumeTiming();
    const auto t0 = std::chrono::steady_clock::now();
    if (batch == 0) {
      for (const Event& e : events) engine.Ingest(e);
    } else {
      for (size_t i = 0; i < events.size(); i += batch) {
        engine.IngestBatch(events.data() + i,
                           std::min(batch, events.size() - i));
      }
    }
    benchmark::DoNotOptimize(engine.stats().operator_executions);
    const auto t1 = std::chrono::steady_clock::now();
    if (batch == kOverheadProbeBatch) {
      RecorderOverheadSample& sample = RecorderSample(with_recorder);
      sample.timed_ns +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      sample.events += static_cast<int64_t>(events.size());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}

void BM_IngestPerEvent(benchmark::State& state) { IngestThroughput(state, 0); }
BENCHMARK(BM_IngestPerEvent);

void BM_IngestBatch(benchmark::State& state) {
  IngestThroughput(state, static_cast<size_t>(state.range(0)));
}
// Batch-size sweep, up to a whole-stream batch.
BENCHMARK(BM_IngestBatch)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(1 << 17);

// The flight-recorder overhead probe: identical workload to
// BM_IngestBatch/1024, with a recorder attached. Its sidecar pair (see
// RecordRecorderOverhead) is the "recorder is free on the hot path" gate.
void BM_IngestBatchRecorded(benchmark::State& state) {
  IngestThroughput(state, kOverheadProbeBatch, /*with_recorder=*/true);
}
BENCHMARK(BM_IngestBatchRecorded);

// Shard-scaling workload: the fixed-window mix of ThroughputQueries() plus
// variance/stddev queries (three operator folds per event) and selection
// lanes (per-key and value-range predicates evaluated on every event), so
// the per-event slicing cost dominates the ring handoff and the shard
// sweep measures real scaling rather than queue overhead.
std::vector<Query> ShardedThroughputQueries() {
  std::vector<Query> queries = ThroughputQueries();
  QueryId id = static_cast<QueryId>(queries.size() + 1);
  for (int i = 0; i < 4; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Tumbling((i + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kVariance
                        : AggregationFunction::kStdDev,
             0};
    queries.push_back(q);
  }
  for (int i = 0; i < 8; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Tumbling(((i % 4) + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kSum
                        : AggregationFunction::kMax,
             0};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(i * 97));
    queries.push_back(q);
  }
  for (int i = 0; i < 2; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Sliding(3 * kSecond, 1 * kSecond);
    q.agg = {AggregationFunction::kAverage, 0};
    q.predicate = Predicate::ValueRange(i * 400.0, i * 400.0 + 500.0);
    queries.push_back(q);
  }
  return queries;
}

/// Accumulated timings per shard count, folded into the metrics sidecar
/// after the benchmark loop finishes (see WriteShardedSidecar below).
/// timed_ns/events accumulate over iterations (their ratio is the rate);
/// stream_events and stats describe one pass over the fixed stream, so
/// they are deterministic and safe for the CI gate to diff.
struct ShardedRunSample {
  int64_t timed_ns = 0;
  int64_t events = 0;
  int64_t stream_events = 0;
  EngineStats stats;
};

std::map<int, ShardedRunSample>& ShardedRunSamples() {
  static std::map<int, ShardedRunSample> samples;
  return samples;
}

// Batch-256 ingest through the key-sharded engine, shard-count sweep. The
// engine (and its thread pool) is constructed and torn down outside the
// timed region; Finish() — the final merge barrier — is timed, as the
// merge cost is part of the sharded design's per-stream price.
void BM_IngestSharded(benchmark::State& state) {
  constexpr size_t kBatch = 256;
  const int shards = static_cast<int>(state.range(0));
  DataGeneratorConfig cfg;
  cfg.num_keys = 1024;  // spread keys so the shard hash partitions evenly
  const std::vector<Event> events = DataGenerator(cfg).Take(1 << 17);
  const std::vector<Query> queries = ShardedThroughputQueries();
  ShardedRunSample& sample = ShardedRunSamples()[shards];
  for (auto _ : state) {
    state.PauseTiming();
    ShardedEngineOptions opts;
    opts.shards = shards;
    auto engine = std::make_unique<ShardedEngine>(opts);
    (void)engine->Configure(queries);
    state.ResumeTiming();
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < events.size(); i += kBatch) {
      engine->IngestBatch(events.data() + i,
                          std::min(kBatch, events.size() - i));
    }
    engine->Finish();
    benchmark::DoNotOptimize(engine->stats().operator_executions);
    const auto t1 = std::chrono::steady_clock::now();
    sample.timed_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    sample.events += static_cast<int64_t>(events.size());
    state.PauseTiming();
    sample.stream_events = static_cast<int64_t>(events.size());
    sample.stats = engine->stats();
    engine.reset();  // joins the shard threads outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
// Real time, not CPU time: the work happens on the shard threads, so the
// driving thread's CPU clock would overstate throughput.
BENCHMARK(BM_IngestSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Writes the sharded-scaling sidecar (bench_micro_sharded_metrics.json or
/// $DESIS_METRICS_OUT): per shard count, events/sec plus the speedup and
/// scaling efficiency against the 1-shard run, and the engine's
/// deterministic counters — the stable metrics the CI regression gate
/// diffs against bench/baselines/micro_sharded_baseline.json.
void WriteShardedSidecar() {
  const auto& samples = ShardedRunSamples();
  if (samples.empty()) return;  // BM_IngestSharded filtered out
  double base_eps = 0;
  const auto base = samples.find(1);
  if (base != samples.end() && base->second.timed_ns > 0) {
    base_eps = static_cast<double>(base->second.events) * 1e9 /
               static_cast<double>(base->second.timed_ns);
  }
  for (const auto& [shards, sample] : samples) {
    if (sample.timed_ns <= 0) continue;
    const double eps = static_cast<double>(sample.events) * 1e9 /
                       static_cast<double>(sample.timed_ns);
    const double speedup = base_eps > 0 ? eps / base_eps : 0;
    bench::Sidecar::Instance().NoteEngineShards(shards);
    char label[64];
    std::snprintf(label, sizeof(label), "DesisSharded shards=%d", shards);
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"system\":\"DesisSharded\",\"engine_shards\":%d,"
                  "\"batch\":256,\"events\":%lld,\"events_per_sec\":%g,"
                  "\"speedup_vs_1shard\":%g,\"scaling_efficiency\":%g,"
                  "\"stats\":",
                  shards, static_cast<long long>(sample.stream_events), eps,
                  speedup, speedup / static_cast<double>(shards));
    bench::Sidecar::Instance().RecordRun(
        label, head + bench::EngineStatsJson(sample.stats) + "}", "[]");
  }
  bench::WriteMetricsSidecar("bench_micro_sharded");
}

/// Folds the recorder on/off probe pair into the sidecar and self-checks
/// the overhead band: recorder-on throughput within 25% of recorder-off
/// (generous against scheduler noise; the recorder's per-event cost is a
/// handful of relaxed stores on control-plane events only). Returns true
/// on violation so main can exit non-zero. No-op (returns false) when the
/// probe pair did not run (--benchmark_filter) or OBS is off.
bool RecordRecorderOverhead() {
  const RecorderOverheadSample& off = RecorderSample(false);
  const RecorderOverheadSample& on = RecorderSample(true);
  if (off.timed_ns <= 0 || on.timed_ns <= 0) return false;
  const double eps_off = static_cast<double>(off.events) * 1e9 /
                         static_cast<double>(off.timed_ns);
  const double eps_on = static_cast<double>(on.events) * 1e9 /
                        static_cast<double>(on.timed_ns);
  const double overhead = eps_on > 0 ? eps_off / eps_on - 1.0 : 0.0;
  for (const bool recorded : {false, true}) {
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"system\":\"Desis\",\"batch\":%zu,\"recorder\":%s,"
                  "\"events_per_sec\":%g,\"recorder_overhead\":%g}",
                  kOverheadProbeBatch, recorded ? "true" : "false",
                  recorded ? eps_on : eps_off, recorded ? overhead : 0.0);
    char label[64];
    std::snprintf(label, sizeof(label), "IngestBatch1024 recorder=%s",
                  recorded ? "on" : "off");
    bench::Sidecar::Instance().RecordRun(label, head, "[]");
  }
  std::printf("flight-recorder overhead at batch %zu: %.1f%%\n",
              kOverheadProbeBatch, overhead * 100.0);
  if (overhead > 0.25) {
    std::fprintf(stderr,
                 "FAIL: flight recorder cost %.1f%% ingest throughput "
                 "(band: 25%%)\n",
                 overhead * 100.0);
    return true;
  }
  return false;
}

void BM_QueryAnalyzer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling((i % 1000 + 1) * 10 * kMillisecond);
    q.agg = {AggregationFunction::kAverage, 0};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(i % 10));
    queries.push_back(q);
  }
  QueryAnalyzer analyzer;
  for (auto _ : state) {
    auto groups = analyzer.Analyze(queries);
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QueryAnalyzer)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace desis

// BENCHMARK_MAIN plus the sharded-scaling sidecar: the sidecar needs the
// accumulated per-shard timings, which only exist after the run loop.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const bool overhead_violated = desis::RecordRecorderOverhead();
  desis::WriteShardedSidecar();
  return overhead_violated ? 1 : 0;
}
