// Microbenchmarks (google-benchmark) for the engine's primitives: operator
// folds, partial merges, serialization, slicing, and query-group formation.

#include <benchmark/benchmark.h>

#include "common/serde.h"
#include "core/engine.h"
#include "core/operators.h"
#include "core/query_analyzer.h"
#include "gen/data_generator.h"

namespace desis {
namespace {

void BM_OperatorAdd(benchmark::State& state) {
  const OperatorMask mask = static_cast<OperatorMask>(state.range(0));
  PartialAggregate agg(mask);
  double v = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Add(v));
    v += 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperatorAdd)
    ->Arg(MaskOf(OperatorKind::kSum))
    ->Arg(MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount))
    ->Arg(MaskOf(OperatorKind::kDecomposableSort))
    ->Arg(MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
          MaskOf(OperatorKind::kMultiply) |
          MaskOf(OperatorKind::kDecomposableSort));

void BM_PartialMerge(benchmark::State& state) {
  const OperatorMask mask =
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kDecomposableSort);
  PartialAggregate a(mask);
  PartialAggregate b(mask);
  for (int i = 0; i < 100; ++i) {
    a.Add(i);
    b.Add(i * 2);
  }
  a.Seal();
  b.Seal();
  for (auto _ : state) {
    PartialAggregate acc = a;
    acc.Merge(b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PartialMerge);

void BM_SortedMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SortedState a;
  SortedState b;
  for (int i = 0; i < n; ++i) {
    a.Add(static_cast<double>((i * 7) % n));
    b.Add(static_cast<double>((i * 13) % n));
  }
  a.Seal();
  b.Seal();
  for (auto _ : state) {
    SortedState acc = a;
    acc.Merge(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SortedMerge)->Arg(100)->Arg(10000);

void BM_PartialSerialize(benchmark::State& state) {
  PartialAggregate agg(MaskOf(OperatorKind::kSum) |
                       MaskOf(OperatorKind::kCount) |
                       MaskOf(OperatorKind::kDecomposableSort));
  for (int i = 0; i < 16; ++i) agg.Add(i);
  agg.Seal();
  for (auto _ : state) {
    ByteWriter out;
    agg.SerializeTo(out);
    ByteReader in(out.bytes());
    benchmark::DoNotOptimize(PartialAggregate::DeserializeFrom(in));
  }
}
BENCHMARK(BM_PartialSerialize);

void BM_SlicerIngest(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kAverage
                        : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  DesisEngine engine;
  (void)engine.Configure(queries);
  DataGeneratorConfig cfg;
  auto events = DataGenerator(cfg).Take(1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    engine.Ingest(events[i & (events.size() - 1)]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlicerIngest)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

// Multi-query tumbling+sliding time-window workload for the batched-ingest
// throughput comparison: all specs are fixed-size time windows, so the
// slicer's run-based fast path applies end to end.
std::vector<Query> ThroughputQueries() {
  std::vector<Query> queries;
  QueryId id = 1;
  for (int i = 0; i < 4; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Tumbling((i + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kAverage
                        : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  for (int i = 0; i < 4; ++i) {
    Query q;
    q.id = id++;
    q.window = WindowSpec::Sliding(2 * (i + 1) * kSecond, 500 * kMillisecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kMax : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  return queries;
}

// Feeds the same 128k-event stream through a fresh Desis engine per
// iteration; batch == 0 uses the per-event Ingest() path, otherwise
// IngestBatch() in `batch`-sized chunks.
void IngestThroughput(benchmark::State& state, size_t batch) {
  DataGeneratorConfig cfg;
  const std::vector<Event> events = DataGenerator(cfg).Take(1 << 17);
  const std::vector<Query> queries = ThroughputQueries();
  for (auto _ : state) {
    state.PauseTiming();
    DesisEngine engine;
    (void)engine.Configure(queries);
    state.ResumeTiming();
    if (batch == 0) {
      for (const Event& e : events) engine.Ingest(e);
    } else {
      for (size_t i = 0; i < events.size(); i += batch) {
        engine.IngestBatch(events.data() + i,
                           std::min(batch, events.size() - i));
      }
    }
    benchmark::DoNotOptimize(engine.stats().operator_executions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}

void BM_IngestPerEvent(benchmark::State& state) { IngestThroughput(state, 0); }
BENCHMARK(BM_IngestPerEvent);

void BM_IngestBatch(benchmark::State& state) {
  IngestThroughput(state, static_cast<size_t>(state.range(0)));
}
// Batch-size sweep, up to a whole-stream batch.
BENCHMARK(BM_IngestBatch)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(1 << 17);

void BM_QueryAnalyzer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling((i % 1000 + 1) * 10 * kMillisecond);
    q.agg = {AggregationFunction::kAverage, 0};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(i % 10));
    queries.push_back(q);
  }
  QueryAnalyzer analyzer;
  for (auto _ : state) {
    auto groups = analyzer.Analyze(queries);
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QueryAnalyzer)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace desis

BENCHMARK_MAIN();
