// Microbenchmarks (google-benchmark) for the engine's primitives: operator
// folds, partial merges, serialization, slicing, and query-group formation.

#include <benchmark/benchmark.h>

#include "common/serde.h"
#include "core/engine.h"
#include "core/operators.h"
#include "core/query_analyzer.h"
#include "gen/data_generator.h"

namespace desis {
namespace {

void BM_OperatorAdd(benchmark::State& state) {
  const OperatorMask mask = static_cast<OperatorMask>(state.range(0));
  PartialAggregate agg(mask);
  double v = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Add(v));
    v += 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperatorAdd)
    ->Arg(MaskOf(OperatorKind::kSum))
    ->Arg(MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount))
    ->Arg(MaskOf(OperatorKind::kDecomposableSort))
    ->Arg(MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
          MaskOf(OperatorKind::kMultiply) |
          MaskOf(OperatorKind::kDecomposableSort));

void BM_PartialMerge(benchmark::State& state) {
  const OperatorMask mask =
      MaskOf(OperatorKind::kSum) | MaskOf(OperatorKind::kCount) |
      MaskOf(OperatorKind::kDecomposableSort);
  PartialAggregate a(mask);
  PartialAggregate b(mask);
  for (int i = 0; i < 100; ++i) {
    a.Add(i);
    b.Add(i * 2);
  }
  a.Seal();
  b.Seal();
  for (auto _ : state) {
    PartialAggregate acc = a;
    acc.Merge(b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PartialMerge);

void BM_SortedMerge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SortedState a;
  SortedState b;
  for (int i = 0; i < n; ++i) {
    a.Add(static_cast<double>((i * 7) % n));
    b.Add(static_cast<double>((i * 13) % n));
  }
  a.Seal();
  b.Seal();
  for (auto _ : state) {
    SortedState acc = a;
    acc.Merge(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SortedMerge)->Arg(100)->Arg(10000);

void BM_PartialSerialize(benchmark::State& state) {
  PartialAggregate agg(MaskOf(OperatorKind::kSum) |
                       MaskOf(OperatorKind::kCount) |
                       MaskOf(OperatorKind::kDecomposableSort));
  for (int i = 0; i < 16; ++i) agg.Add(i);
  agg.Seal();
  for (auto _ : state) {
    ByteWriter out;
    agg.SerializeTo(out);
    ByteReader in(out.bytes());
    benchmark::DoNotOptimize(PartialAggregate::DeserializeFrom(in));
  }
}
BENCHMARK(BM_PartialSerialize);

void BM_SlicerIngest(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int i = 0; i < num_queries; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {i % 2 == 0 ? AggregationFunction::kAverage
                        : AggregationFunction::kSum,
             0};
    queries.push_back(q);
  }
  DesisEngine engine;
  (void)engine.Configure(queries);
  DataGeneratorConfig cfg;
  auto events = DataGenerator(cfg).Take(1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    engine.Ingest(events[i & (events.size() - 1)]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlicerIngest)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_QueryAnalyzer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling((i % 1000 + 1) * 10 * kMillisecond);
    q.agg = {AggregationFunction::kAverage, 0};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(i % 10));
    queries.push_back(q);
  }
  QueryAnalyzer analyzer;
  for (auto _ : state) {
    auto groups = analyzer.Analyze(queries);
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QueryAnalyzer)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace desis

BENCHMARK_MAIN();
