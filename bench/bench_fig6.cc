// Figure 6: end-to-end throughput and latency on a single node.
//  6a: latency of one tumbling 1s window (average, 10 keys).
//  6b: throughput of 1..1000 concurrent windows, lengths U[1,10] seconds.
//  6c: a small decentralized Desis run so the sidecar also carries the
//      per-node health gauges (watermark lag, backlog) next to the
//      per-group sharing-ratio series — one file feeds `desis-inspect
//      summary` with both views.

#include "harness.h"

namespace desis::bench {
namespace {

std::vector<Query> TumblingWindows(int n, AggregationFunction fn) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {fn, 0.5};
    queries.push_back(q);
  }
  return queries;
}

void Fig6a() {
  PrintHeader("Fig 6a: result latency, 1 tumbling 1s window, average (us)",
              {"avg_us", "max_us"});
  DataGeneratorConfig dcfg;
  dcfg.num_keys = 10;
  auto events = DataGenerator(dcfg).Take(Scaled(500'000));

  for (const char* name : {"Desis", "DeSW", "Scotty", "DeBucket", "CeBuffer"}) {
    auto engine = MakeEngine(name);
    std::vector<Query> queries = {
        {1, WindowSpec::Tumbling(1 * kSecond), {AggregationFunction::kAverage, 0}, {}, false}};
    (void)engine->Configure(queries);
    auto lat = MeasureFireLatency(*engine, events);
    PrintRow(name, {lat.avg_us, lat.max_us});
  }
  // Disco is decentralized-only in this reproduction; its per-role
  // processing latency is reported in Fig 12 instead.
}

void Fig6b() {
  PrintHeader("Fig 6b: throughput vs concurrent windows (events/s)",
              {"Desis", "DeSW", "Scotty", "DeBucket", "CeBuffer"});
  DataGeneratorConfig dcfg;
  dcfg.num_keys = 10;
  const size_t base = Scaled(500'000);
  auto events = DataGenerator(dcfg).Take(base);

  for (int n : {1, 10, 100, 1000}) {
    std::vector<double> cells;
    auto queries = TumblingWindows(n, AggregationFunction::kAverage);
    for (const char* name : {"Desis", "DeSW", "Scotty", "DeBucket", "CeBuffer"}) {
      const bool per_window_cost =
          std::string(name) == "DeBucket" || std::string(name) == "CeBuffer";
      // Per-window-cost systems pay O(n) per event; sample fewer events so
      // the sweep stays tractable (throughput is a per-event-cost measure).
      const size_t count = std::min(
          events.size(),
          per_window_cost ? std::max<size_t>(base / std::max(1, n / 5), 50'000)
                          : base);
      std::vector<Event> sample(events.begin(),
                                events.begin() + std::min(count, events.size()));
      auto engine = MakeEngine(name);
      (void)engine->Configure(queries);
      cells.push_back(MeasureThroughput(*engine, sample).events_per_sec);
    }
    PrintRow(std::to_string(n), cells);
  }
}

void Fig6c() {
  PrintHeader("Fig 6c: decentralized Desis, 4 locals x 2 intermediates "
              "(pipeline events/s)",
              {"pipeline"});
  auto result = RunDecentralized(ClusterSystem::kDesis, {4, 2, 1},
                                 TumblingWindows(10, AggregationFunction::kSum),
                                 Scaled(100'000));
  PrintRow("Desis", {result.pipeline_events_per_sec});

  // Same deployment with 2-shard local engines: results are identical by
  // construction (tests/test_sharded_engine.cc), so the sidecar's stable
  // counters let the CI gate catch the sharded path drifting from the
  // serial one.
  ClusterOptions sharded;
  sharded.engine_shards = 2;
  auto sharded_result = RunDecentralized(
      ClusterSystem::kDesis, {4, 2, 1},
      TumblingWindows(10, AggregationFunction::kSum), Scaled(100'000), 10, 10,
      100 * kMillisecond, 0.0, sharded);
  PrintRow("Desis shards=2", {sharded_result.pipeline_events_per_sec});
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::Fig6a();
  desis::bench::Fig6b();
  desis::bench::Fig6c();
  desis::bench::WriteMetricsSidecar("bench_fig6");
  return 0;
}
