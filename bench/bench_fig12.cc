// Figure 12: per-node-role processing latency (µs of node busy time per
// emitted result) on the 3-node chain, for a 1s tumbling window.
//  12a: average aggregation.  12b: median aggregation.

#include "harness.h"

namespace desis::bench {
namespace {

void Fig12(AggregationFunction fn, const char* title) {
  PrintHeader(title, {"local_us", "intermediate_us", "root_us"});
  const size_t events = Scaled(300'000);
  std::vector<Query> queries = {
      {1, WindowSpec::Tumbling(1 * kSecond), {fn, 0.5}, {}, false}};
  for (ClusterSystem system :
       {ClusterSystem::kDesis, ClusterSystem::kDisco, ClusterSystem::kScotty,
        ClusterSystem::kCeBuffer}) {
    auto r = RunDecentralized(system, {1, 1}, queries, events);
    PrintRow(ToString(system),
             {r.local_us_per_result, r.intermediate_us_per_result,
              r.root_us_per_result});
  }
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::Fig12(desis::AggregationFunction::kAverage,
                      "Fig 12a: per-role latency, average (us/result)");
  desis::bench::Fig12(desis::AggregationFunction::kMedian,
                      "Fig 12b: per-role latency, median (us/result)");
  desis::bench::WriteMetricsSidecar("bench_fig12");
  return 0;
}
