// Reproduces paper Table 1: the relationship between aggregation functions
// and the primitive operators they decompose into, plus the measured
// per-event operator executions that sharing saves.

#include <cstdio>
#include <vector>

#include "core/aggregation.h"
#include "core/operators.h"
#include "harness.h"

namespace desis {
namespace {

void PrintTable1() {
  std::printf("=== Table 1: aggregation functions -> operators ===\n");
  std::printf("%-18s %s\n", "function", "operators");
  const AggregationFunction fns[] = {
      AggregationFunction::kSum,     AggregationFunction::kCount,
      AggregationFunction::kAverage, AggregationFunction::kProduct,
      AggregationFunction::kGeometricMean, AggregationFunction::kMax,
      AggregationFunction::kMin,     AggregationFunction::kMedian,
      AggregationFunction::kQuantile, AggregationFunction::kVariance,
      AggregationFunction::kStdDev};
  for (AggregationFunction fn : fns) {
    std::string ops;
    const OperatorMask mask = OperatorsFor(fn);
    for (int k = 0; k < kNumOperatorKinds; ++k) {
      const auto kind = static_cast<OperatorKind>(k);
      if (MaskHas(mask, kind)) {
        if (!ops.empty()) ops += ", ";
        ops += ToString(kind);
      }
    }
    std::printf("%-18s %s\n", ToString(fn).c_str(), ops.c_str());
  }
}

void PrintSharingExamples() {
  std::printf(
      "\n=== operator sharing: per-event executions for query mixes ===\n");
  std::printf("%-34s %8s %10s\n", "query mix", "shared", "unshared");
  struct Mix {
    const char* name;
    std::vector<AggregationFunction> fns;
  };
  const Mix mixes[] = {
      {"average + sum", {AggregationFunction::kAverage, AggregationFunction::kSum}},
      {"average + sum + count",
       {AggregationFunction::kAverage, AggregationFunction::kSum,
        AggregationFunction::kCount}},
      {"product + geometric_mean",
       {AggregationFunction::kProduct, AggregationFunction::kGeometricMean}},
      {"max + min", {AggregationFunction::kMax, AggregationFunction::kMin}},
      {"median + quantile + max",
       {AggregationFunction::kMedian, AggregationFunction::kQuantile,
        AggregationFunction::kMax}},
      {"avg + sum + max + median",
       {AggregationFunction::kAverage, AggregationFunction::kSum,
        AggregationFunction::kMax, AggregationFunction::kMedian}},
      {"average + variance + stddev",
       {AggregationFunction::kAverage, AggregationFunction::kVariance,
        AggregationFunction::kStdDev}},
  };
  for (const Mix& mix : mixes) {
    OperatorMask shared = 0;
    int unshared = 0;
    for (AggregationFunction fn : mix.fns) {
      shared = static_cast<OperatorMask>(shared | OperatorsFor(fn));
      unshared += OperatorCount(OperatorsFor(fn));
    }
    shared = ReduceMask(shared);
    // Verify against the live PartialAggregate implementation.
    PartialAggregate agg(shared);
    const int measured = agg.Add(1.0);
    std::printf("%-34s %8d %10d\n", mix.name, measured, unshared);
  }
}

}  // namespace
}  // namespace desis

int main() {
  desis::PrintTable1();
  desis::PrintSharingExamples();
  desis::bench::WriteMetricsSidecar("bench_table1");
  return 0;
}
