// Figure 9: concurrent windows with different aggregation functions and
// window measures (1s tumbling unless stated otherwise).
//  9a/9b: average+sum mix — throughput and number of calculations.
//  9c/9d: distinct quantiles — throughput and number of calculations.
//  9e/9f: two functions per window — throughput and calculations.
//  9g:    quantile+max (sharing the non-decomposable sort).
//  9h:    mixed time- and count-based measures.

#include "harness.h"

namespace desis::bench {
namespace {

const std::vector<const char*> kSystems = {"Desis", "DeSW", "DeBucket",
                                           "CeBuffer"};

Query Tumbling1s(QueryId id, AggregationFunction fn, double quantile = 0.5) {
  Query q;
  q.id = id;
  q.window = WindowSpec::Tumbling(1 * kSecond);
  q.agg = {fn, quantile};
  return q;
}

std::vector<Event> SharedEvents(size_t n) {
  DataGeneratorConfig dcfg;
  dcfg.num_keys = 10;
  return DataGenerator(dcfg).Take(n);
}

void ThroughputSweep(const char* title,
                     const std::function<std::vector<Query>(int)>& make,
                     const std::vector<Event>& events) {
  PrintHeader(title, {"Desis", "DeSW", "DeBucket", "CeBuffer"});
  for (int n : {2, 10, 100, 1000}) {
    std::vector<double> cells;
    auto queries = make(n);
    for (const char* name : kSystems) {
      const bool per_window_cost =
          std::string(name) == "DeBucket" || std::string(name) == "CeBuffer";
      const bool per_group_cost = std::string(name) == "DeSW";
      // Systems whose per-event cost grows with the query count get fewer
      // sample events; throughput is a per-event-cost measure either way.
      size_t count = events.size();
      if (per_window_cost) {
        count = std::max<size_t>(events.size() / std::max(1, n / 5), 50'000);
      } else if (per_group_cost) {
        count = std::max<size_t>(events.size() / std::max(1, n / 20), 50'000);
      }
      count = std::min(events.size(), count);
      std::vector<Event> sample(events.begin(), events.begin() + count);
      auto engine = MakeEngine(name);
      (void)engine->Configure(queries);
      cells.push_back(MeasureThroughput(*engine, sample).events_per_sec);
    }
    PrintRow(std::to_string(n) + " windows", cells);
  }
}

void CalculationSweep(const char* title,
                      const std::function<std::vector<Query>(int)>& make,
                      size_t event_count) {
  PrintHeader(title, {"Desis", "DeSW", "DeBucket"});
  auto events = SharedEvents(event_count);
  for (int n : {2, 10, 100}) {
    std::vector<double> cells;
    auto queries = make(n);
    for (const char* name : {"Desis", "DeSW", "DeBucket"}) {
      auto engine = MakeEngine(name);
      (void)engine->Configure(queries);
      auto r = MeasureThroughput(*engine, events);
      cells.push_back(static_cast<double>(r.stats.operator_executions));
    }
    PrintRow(std::to_string(n) + " windows", cells);
  }
}

std::vector<Query> AvgSumMix(int n) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    queries.push_back(Tumbling1s(static_cast<QueryId>(i + 1),
                                 i % 2 == 0 ? AggregationFunction::kAverage
                                            : AggregationFunction::kSum));
  }
  return queries;
}

std::vector<Query> DistinctQuantiles(int n) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    queries.push_back(Tumbling1s(static_cast<QueryId>(i + 1),
                                 AggregationFunction::kQuantile,
                                 static_cast<double>((i % 1000) + 1) / 1001.0));
  }
  return queries;
}

std::vector<Query> TwoFunctionsPerWindow(int n) {
  // Each "window" evaluates average and max (two functions per window).
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    queries.push_back(Tumbling1s(static_cast<QueryId>(2 * i + 1),
                                 AggregationFunction::kAverage));
    queries.push_back(
        Tumbling1s(static_cast<QueryId>(2 * i + 2), AggregationFunction::kMax));
  }
  return queries;
}

std::vector<Query> QuantileMax(int n) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    queries.push_back(Tumbling1s(static_cast<QueryId>(2 * i + 1),
                                 AggregationFunction::kQuantile,
                                 static_cast<double>((i % 1000) + 1) / 1001.0));
    queries.push_back(
        Tumbling1s(static_cast<QueryId>(2 * i + 2), AggregationFunction::kMax));
  }
  return queries;
}

std::vector<Query> MixedMeasures(int n) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.agg = {AggregationFunction::kAverage, 0};
    q.window = i % 2 == 0 ? WindowSpec::Tumbling(1 * kSecond)
                          : WindowSpec::CountTumbling(
                                static_cast<int64_t>(Scaled(1'000'000)));
    queries.push_back(q);
  }
  return queries;
}

}  // namespace
}  // namespace desis::bench

int main() {
  using namespace desis::bench;
  auto events = SharedEvents(Scaled(500'000));
  auto calc_events = Scaled(500'000);

  ThroughputSweep("Fig 9a: throughput, average+sum (events/s)", AvgSumMix,
                  events);
  CalculationSweep("Fig 9b: calculations, average+sum", AvgSumMix,
                   calc_events);
  ThroughputSweep("Fig 9c: throughput, distinct quantiles (events/s)",
                  DistinctQuantiles, events);
  CalculationSweep("Fig 9d: calculations, distinct quantiles",
                   DistinctQuantiles, calc_events);
  ThroughputSweep("Fig 9e: throughput, two functions per window (events/s)",
                  TwoFunctionsPerWindow, events);
  CalculationSweep("Fig 9f: calculations, two functions per window",
                   TwoFunctionsPerWindow, calc_events);
  ThroughputSweep("Fig 9g: throughput, quantile+max (events/s)", QuantileMax,
                  events);
  ThroughputSweep("Fig 9h: throughput, mixed time/count measures (events/s)",
                  MixedMeasures, events);
  desis::bench::WriteMetricsSidecar("bench_fig9");
  return 0;
}
