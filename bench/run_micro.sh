#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON.
#
# Usage: bench/run_micro.sh [build-dir] [output-json]
#
# Defaults to ./build and ./BENCH_micro.json (repo root). The JSON is the
# native google-benchmark format; the batched-ingest acceptance numbers live
# in the BM_IngestPerEvent / BM_IngestBatch/* entries (items_per_second).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_micro.json}"
bin="$build_dir/bench/bench_micro"

if [[ ! -x "$bin" ]]; then
  echo "bench_micro not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "Wrote $out_json"
