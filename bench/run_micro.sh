#!/usr/bin/env bash
# Runs the microbenchmark suite and records the results as JSON.
#
# Usage: bench/run_micro.sh [build-dir] [output-json] [sharded-sidecar-json]
#
# Defaults to ./build, ./BENCH_micro.json and ./BENCH_micro_sharded.json
# (repo root). The first JSON is the native google-benchmark format; the
# batched-ingest acceptance numbers live in the BM_IngestPerEvent /
# BM_IngestBatch/* entries (items_per_second). The sharded sidecar carries
# the BM_IngestSharded shard sweep (events/sec, speedup and scaling
# efficiency vs 1 shard, deterministic engine counters); its headline
# numbers are appended to BENCH_history.jsonl when desis_inspect is built.
#
# The optimizer suites ride along: bench_correlated (10k-query factor
# rewriting, sidecar BENCH_correlated.json) and bench_query_churn (runtime
# add/remove latency, sidecar BENCH_query_churn.json). Both self-check
# their acceptance contracts (byte-identical results, >= 2x operator-eval
# reduction, full churn histograms) and fail this script on violation;
# their sidecars are appended to BENCH_history.jsonl too. DESIS_BENCH_SCALE
# scales every suite.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_micro.json}"
sharded_json="${3:-$repo_root/BENCH_micro_sharded.json}"
bin="$build_dir/bench/bench_micro"

if [[ ! -x "$bin" ]]; then
  echo "bench_micro not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

DESIS_METRICS_OUT="$sharded_json" "$bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "Wrote $out_json"

inspect="$build_dir/tools/desis_inspect"
if [[ -x "$inspect" && -s "$sharded_json" ]]; then
  "$inspect" summary "$sharded_json"
  "$inspect" history "$sharded_json" --append="$repo_root/BENCH_history.jsonl"
fi

# Optimizer and bounded-memory suites: each exits non-zero when its
# acceptance contract fails (set -e propagates that), then lands in the
# shared history file. memory_sweep is the cluster-level budget x
# cardinality grid (BENCH_memory_sweep.json).
for suite in correlated query_churn memory_cap memory_sweep; do
  suite_bin="$build_dir/bench/bench_${suite}"
  suite_json="$repo_root/BENCH_${suite}.json"
  if [[ -x "$suite_bin" ]]; then
    DESIS_METRICS_OUT="$suite_json" "$suite_bin"
    echo "Wrote $suite_json"
    if [[ -x "$inspect" && -s "$suite_json" ]]; then
      "$inspect" summary "$suite_json"
      "$inspect" history "$suite_json" --append="$repo_root/BENCH_history.jsonl"
    fi
  fi
done
