// Transport runtime: inline vs threaded wall-clock throughput across the
// Fig-11 topologies. Inline runs the seed's single-driver lock-step loop;
// threaded runs one ingest thread per local node against the bounded-mailbox
// workers, which is the deployment the paper's edge clusters correspond to.
// Writes one JSON document (embedding Cluster::StatsReport() per run) to
// BENCH_transport.json, or --out=PATH.
//
// Flags: --events-per-local=N (default 200k, scaled by DESIS_BENCH_SCALE),
//        --out=PATH.

#include <cinttypes>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gen/data_generator.h"
#include "harness.h"
#include "transport/threaded_transport.h"
#include "transport/transport.h"

namespace desis::bench {
namespace {

struct TopologyCase {
  const char* label;
  ClusterTopology topology;
};

// The Fig-11 shapes: the 3-node chain, its multi-hop variants (§6.4.1), and
// two fan-in shapes that give the threaded transport real concurrency.
const std::vector<TopologyCase> kTopologies = {
    {"1x1", {1, 1, 1}},   {"1x1x2", {1, 1, 2}}, {"1x1x4", {1, 1, 4}},
    {"4x2", {4, 2, 1}},   {"8x4", {8, 4, 1}},
};

std::vector<Query> QueryMix() {
  std::vector<Query> queries;
  Query avg;
  avg.id = 1;
  avg.window = WindowSpec::Tumbling(1 * kSecond);
  avg.agg = {AggregationFunction::kAverage, 0.5};
  queries.push_back(avg);
  Query sum;
  sum.id = 2;
  sum.window = WindowSpec::Sliding(2 * kSecond, 500 * kMillisecond);
  sum.agg = {AggregationFunction::kSum, 0.5};
  queries.push_back(sum);
  Query median;  // root-only group: raw events cross every link
  median.id = 3;
  median.window = WindowSpec::Tumbling(1 * kSecond);
  median.agg = {AggregationFunction::kMedian, 0.5};
  queries.push_back(median);
  return queries;
}

std::vector<std::vector<Event>> MakeStreams(int locals,
                                            size_t events_per_local) {
  std::vector<std::vector<Event>> streams(static_cast<size_t>(locals));
  for (size_t i = 0; i < streams.size(); ++i) {
    DataGeneratorConfig cfg;
    cfg.num_keys = 10;
    cfg.mean_interval = 10;
    cfg.seed = 1000 + i;
    streams[i] = DataGenerator(cfg).Take(events_per_local);
  }
  return streams;
}

struct RunOutcome {
  double wall_ms = 0;
  double events_per_sec = 0;
  uint64_t results = 0;
  std::string stats_json;
};

RunOutcome Run(ClusterTopology topology, bool threaded,
               const std::vector<std::vector<Event>>& streams,
               Timestamp round_us) {
  Cluster cluster(ClusterSystem::kDesis, topology);
  if (threaded) {
    cluster.set_transport(std::make_unique<ThreadedTransport>());
  }
  auto status = cluster.Configure(QueryMix());
  if (!status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }

  Timestamp max_ts = 0;
  for (const auto& s : streams) {
    if (!s.empty() && s.back().ts > max_ts) max_ts = s.back().ts;
  }
  const Timestamp end_ts = max_ts + round_us;

  auto drive_one = [&](int idx) {
    const std::vector<Event>& stream = streams[static_cast<size_t>(idx)];
    size_t cursor = 0;
    for (Timestamp t = 0; t <= end_ts; t += round_us) {
      const size_t begin = cursor;
      while (cursor < stream.size() && stream[cursor].ts < t + round_us) {
        ++cursor;
      }
      if (cursor > begin) {
        cluster.IngestAt(idx, stream.data() + begin, cursor - begin);
      }
      cluster.AdvanceAt(idx, t + round_us);
    }
    cluster.AdvanceAt(idx, max_ts + kMinute);
  };

  const int64_t t0 = NowNs();
  if (threaded) {
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < streams.size(); ++i) {
      drivers.emplace_back(drive_one, static_cast<int>(i));
    }
    for (std::thread& t : drivers) t.join();
  } else {
    for (size_t i = 0; i < streams.size(); ++i) drive_one(static_cast<int>(i));
  }
  cluster.Drain();
  const int64_t dt = NowNs() - t0;

  RunOutcome out;
  out.wall_ms = static_cast<double>(dt) / 1e6;
  uint64_t total_events = 0;
  for (const auto& s : streams) total_events += s.size();
  out.events_per_sec =
      static_cast<double>(total_events) * 1e9 / static_cast<double>(dt);
  out.results = cluster.results();
  out.stats_json = cluster.StatsReport();
  return out;
}

int Main(int argc, char** argv) {
  size_t events_per_local = Scaled(200'000);
  std::string out_path = "BENCH_transport.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--events-per-local=", 19) == 0) {
      events_per_local = static_cast<size_t>(std::atoll(arg + 19));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }
  if (events_per_local == 0) events_per_local = 1;

  std::string json = "{\"bench\":\"transport\",\"events_per_local\":" +
                     std::to_string(events_per_local) + ",\"runs\":[";
  bool first = true;

  PrintHeader("Transport: inline vs threaded (events/s, wall ms)",
              {"inline_eps", "threaded_eps", "inline_ms", "threaded_ms"});
  for (const TopologyCase& tc : kTopologies) {
    const auto streams =
        MakeStreams(tc.topology.num_locals, events_per_local);
    const RunOutcome inline_run =
        Run(tc.topology, /*threaded=*/false, streams, 100 * kMillisecond);
    const RunOutcome threaded_run =
        Run(tc.topology, /*threaded=*/true, streams, 100 * kMillisecond);
    if (inline_run.results != threaded_run.results) {
      std::fprintf(stderr, "%s: result mismatch inline=%" PRIu64
                           " threaded=%" PRIu64 "\n",
                   tc.label, inline_run.results, threaded_run.results);
      return 1;
    }
    PrintRow(tc.label, {inline_run.events_per_sec, threaded_run.events_per_sec,
                        inline_run.wall_ms, threaded_run.wall_ms});
    for (const auto* run : {&inline_run, &threaded_run}) {
      if (!first) json += ",";
      first = false;
      json += "{\"topology\":\"";
      json += tc.label;
      json += "\",\"transport\":\"";
      json += (run == &inline_run) ? "inline" : "threaded";
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\",\"wall_ms\":%.3f,\"events_per_sec\":%.1f,"
                    "\"results\":%" PRIu64 ",\"stats\":",
                    run->wall_ms, run->events_per_sec, run->results);
      json += buf;
      json += run->stats_json;
      json += "}";
    }
  }
  json += "]}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  WriteMetricsSidecar("bench_transport");
  return 0;
}

}  // namespace
}  // namespace desis::bench

int main(int argc, char** argv) { return desis::bench::Main(argc, argv); }
