#ifndef DESIS_BENCH_HARNESS_H_
#define DESIS_BENCH_HARNESS_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>  // getpid: unique sidecar filenames

#include "baselines/ce_buffer.h"
#include "baselines/de_bucket.h"
#include "baselines/de_sw.h"
#include "core/engine.h"
#include "gen/data_generator.h"
#include "gen/query_generator.h"
#include "net/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "transport/transport.h"

namespace desis::bench {

/// Global workload scale; DESIS_BENCH_SCALE=0.1 runs every bench on 10% of
/// its default event counts (useful on slow machines / CI).
inline double ScaleFactor() {
  static const double scale = [] {
    const char* env = std::getenv("DESIS_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  const double scaled = static_cast<double>(base) * ScaleFactor();
  return scaled < 1 ? 1 : static_cast<size_t>(scaled);
}

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-slice-span budget per bench run; bounds the sidecar of a bench with
/// dozens of runs to a few MB (the tracer keeps the newest spans).
inline constexpr size_t kSidecarTraceCapacity = 1024;

inline std::string EngineStatsJson(const EngineStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"events\":%llu,\"operator_executions\":%llu,"
                "\"slices_created\":%llu,\"windows_fired\":%llu,"
                "\"selection_evals\":%llu,\"merges\":%llu}",
                static_cast<unsigned long long>(s.events),
                static_cast<unsigned long long>(s.operator_executions),
                static_cast<unsigned long long>(s.slices_created),
                static_cast<unsigned long long>(s.windows_fired),
                static_cast<unsigned long long>(s.selection_evals),
                static_cast<unsigned long long>(s.merges));
  return buf;
}

/// Process-wide accumulator for the machine-readable metrics sidecar:
/// every measured run appends one entry (run label, metrics snapshot,
/// slice-lifecycle spans); the bench main calls WriteMetricsSidecar() last.
/// Single-threaded by design — bench mains drive runs sequentially.
class Sidecar {
 public:
  static Sidecar& Instance() {
    static Sidecar instance;
    return instance;
  }

  /// Appends one run entry. `report_json` must be a complete JSON value
  /// (e.g. Cluster::StatsReport()); `spans_json` a JSON array (e.g.
  /// SliceTracer::ToJson() after quiescence).
  void RecordRun(const std::string& label, const std::string& report_json,
                 const std::string& spans_json) {
    entries_.push_back("{\"run\":\"" + obs::JsonEscape(label) +
                       "\",\"report\":" + report_json +
                       ",\"spans\":" + spans_json + "}");
  }

  /// Remembers a delivery channel used by some run ("inline", "threaded",
  /// "simlink"); the distinct names end up in the meta header so diffs can
  /// refuse to compare, say, an inline run against a lossy-link run.
  void NoteTransport(const std::string& name) {
    for (const std::string& have : transports_) {
      if (have == name) return;
    }
    transports_.push_back(name);
  }

  /// Remembers an engine-shard count used by some run (0 = the serial seed
  /// path). The distinct counts end up in the meta header next to the
  /// hardware thread count, so desis-inspect refuses to diff sidecars that
  /// ran with different parallelism configurations.
  void NoteEngineShards(int shards) {
    for (int have : engine_shards_) {
      if (have == shards) return;
    }
    engine_shards_.push_back(shards);
    std::sort(engine_shards_.begin(), engine_shards_.end());
  }

  /// Remembers the health-watchdog configuration the runs used. A live
  /// watchdog thread samples alongside the workload, so desis-inspect
  /// refuses to diff a watchdog-on sidecar against a watchdog-off baseline
  /// (same contract as NoteEngineShards). Call once per bench main; any
  /// run with it enabled marks the whole sidecar.
  void NoteWatchdog(const obs::WatchdogOptions& watchdog) {
    watchdog_enabled_ = watchdog_enabled_ || watchdog.enabled;
    if (watchdog.enabled) watchdog_ = watchdog;
    watchdog_noted_ = true;
  }

  size_t num_runs() const { return entries_.size(); }

  /// Provenance header written ahead of the runs: code version, build
  /// flavor, wall-clock time of the write, and the transports used. This
  /// is what desis-inspect keys its "comparable runs?" checks on.
  std::string MetaJson() const {
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc) != nullptr) {
      std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
    std::string out = "{\"git_sha\":\"";
#ifdef DESIS_GIT_SHA
    out += obs::JsonEscape(DESIS_GIT_SHA);
#else
    out += "unknown";
#endif
    out += "\",\"build_type\":\"";
#ifdef DESIS_BUILD_TYPE
    out += obs::JsonEscape(DESIS_BUILD_TYPE);
#else
    out += "unknown";
#endif
    out += "\",\"written_utc\":\"";
    out += stamp;
    out += "\",\"obs_enabled\":";
    out += DESIS_OBS_ENABLED ? "true" : "false";
    out += ",\"transports\":[";
    for (size_t i = 0; i < transports_.size(); ++i) {
      out += (i == 0 ? "\"" : ",\"") + obs::JsonEscape(transports_[i]) + "\"";
    }
    out += "],\"engine_shards\":[";
    for (size_t i = 0; i < engine_shards_.size(); ++i) {
      out += (i == 0 ? "" : ",") + std::to_string(engine_shards_[i]);
    }
    out += "],\"hw_threads\":";
    out += std::to_string(std::thread::hardware_concurrency());
    if (watchdog_noted_) {
      out += ",\"watchdog\":{\"enabled\":";
      out += watchdog_enabled_ ? "true" : "false";
      out += ",\"period_ms\":" + std::to_string(watchdog_.period_ms);
      out += ",\"silence_threshold\":" +
             std::to_string(watchdog_.silence_threshold);
      out += ",\"grace_us\":" + std::to_string(watchdog_.grace_us);
      out += ",\"auto_recover\":";
      out += watchdog_.auto_recover ? "true" : "false";
      out += "}";
    }
    out += "}";
    return out;
  }

  /// Writes `<bench>_metrics.json` (or $DESIS_METRICS_OUT) in the working
  /// directory; returns false (with a note on stderr) on I/O failure.
  /// DESIS_METRICS_UNIQUE=1 inserts a UTC timestamp + pid into the default
  /// filename so repeated runs archive side by side instead of overwriting
  /// each other (the fixed name stays the default: CI golden checks and
  /// plot scripts glob for it).
  bool Write(const std::string& bench_name) const {
    const char* env = std::getenv("DESIS_METRICS_OUT");
    std::string path;
    if (env != nullptr) {
      path = env;
    } else {
      path = bench_name + "_metrics";
      const char* unique = std::getenv("DESIS_METRICS_UNIQUE");
      if (unique != nullptr && unique[0] == '1') {
        char suffix[64];
        const std::time_t now = std::time(nullptr);
        std::tm utc{};
        char stamp[32] = "unknown";
        if (gmtime_r(&now, &utc) != nullptr) {
          std::strftime(stamp, sizeof(stamp), "%Y%m%dT%H%M%SZ", &utc);
        }
        std::snprintf(suffix, sizeof(suffix), ".%s.%d", stamp,
                      static_cast<int>(getpid()));
        path += suffix;
      }
      path += ".json";
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics sidecar %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"scale\":%g,\"obs_enabled\":%s,",
                 obs::JsonEscape(bench_name).c_str(), ScaleFactor(),
                 DESIS_OBS_ENABLED ? "true" : "false");
    std::fprintf(f, "\"meta\":%s,", MetaJson().c_str());
    std::fprintf(f, "\"runs\":[");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", entries_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("metrics sidecar: %s (%zu runs)\n", path.c_str(),
                entries_.size());
    std::fflush(stdout);
    return true;
  }

 private:
  std::vector<std::string> entries_;
  std::vector<std::string> transports_;
  std::vector<int> engine_shards_;
  bool watchdog_noted_ = false;
  bool watchdog_enabled_ = false;
  obs::WatchdogOptions watchdog_;
};

/// Convenience for bench mains: dump everything recorded so far.
inline bool WriteMetricsSidecar(const std::string& bench_name) {
  return Sidecar::Instance().Write(bench_name);
}

/// Centralized engine factory (the single-node systems of §6.1.1).
inline std::unique_ptr<StreamEngine> MakeEngine(const std::string& name) {
  if (name == "Desis") return std::make_unique<DesisEngine>();
  if (name == "DeSW") return std::make_unique<DeSWEngine>();
  if (name == "Scotty") return std::make_unique<ScottyEngine>();
  if (name == "DeBucket") return std::make_unique<DeBucketEngine>();
  if (name == "CeBuffer") return std::make_unique<CeBufferEngine>();
  std::fprintf(stderr, "unknown engine %s\n", name.c_str());
  std::abort();
}

/// Single-node sustainable throughput: wall time to drain a pre-generated
/// event stream (results consumed by a counting sink).
struct ThroughputResult {
  double events_per_sec = 0;
  uint64_t results = 0;
  EngineStats stats;
};

inline ThroughputResult MeasureThroughput(StreamEngine& engine,
                                          const std::vector<Event>& events) {
  ThroughputResult out;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  // Per-query-group cost attribution (group.events_in / operator_evals —
  // the sharing-ratio inputs, docs/METRICS.md). Registration happens here,
  // outside the timed region; the hot path only pays the slicer's
  // per-sealed-slice flushes.
  obs::MetricsRegistry registry;
  engine.set_tracer(&tracer);
  engine.set_metrics_registry(&registry);
  engine.set_sink([&](const WindowResult&) { ++out.results; });
  const int64_t t0 = NowNs();
  for (const Event& e : events) engine.Ingest(e);
  engine.AdvanceTo(events.back().ts + kMinute);
  const int64_t dt = NowNs() - t0;
  out.events_per_sec =
      static_cast<double>(events.size()) * 1e9 / static_cast<double>(dt);
  out.stats = engine.stats();
  engine.set_tracer(nullptr);
  char report[256];
  std::snprintf(report, sizeof(report),
                "{\"system\":\"%s\",\"events\":%zu,\"events_per_sec\":%g,"
                "\"results\":%llu,\"stats\":",
                engine.name().c_str(), events.size(), out.events_per_sec,
                static_cast<unsigned long long>(out.results));
  std::string report_json = report + EngineStatsJson(out.stats);
  report_json += ",\"obs\":{\"metrics\":" + registry.ToJson() + "}}";
  Sidecar::Instance().RecordRun(engine.name(), report_json, tracer.ToJson());
  engine.set_metrics_registry(nullptr);  // registry dies with this frame
  return out;
}

/// Result-production latency: the mean / p99-ish max stall of the Ingest
/// call that fires a window. Incremental engines pay O(slices) there;
/// CeBuffer iterates the whole window buffer (§6.2.1). The event-time
/// latency of the paper additionally contains the window wait, which is
/// engine-independent; this isolates the engine-dependent part.
struct LatencyResult {
  double avg_us = 0;
  double max_us = 0;
  uint64_t samples = 0;
};

inline LatencyResult MeasureFireLatency(StreamEngine& engine,
                                        const std::vector<Event>& events) {
  LatencyResult out;
  uint64_t fired = 0;
  engine.set_sink([&](const WindowResult&) { ++fired; });
  double total_us = 0;
  uint64_t warmup = 0;
  for (const Event& e : events) {
    const uint64_t before = fired;
    const int64_t t0 = NowNs();
    engine.Ingest(e);
    const int64_t dt = NowNs() - t0;
    if (fired > before) {
      if (warmup < 1) {  // the first fire hits cold allocators/caches
        ++warmup;
        continue;
      }
      const double us = static_cast<double>(dt) / 1000.0;
      total_us += us;
      if (us > out.max_us) out.max_us = us;
      ++out.samples;
    }
  }
  if (out.samples > 0) out.avg_us = total_us / static_cast<double>(out.samples);
  return out;
}

/// One decentralized run, reduced to the pipeline model of DESIGN.md.
struct DecentralizedResult {
  uint64_t total_events = 0;
  uint64_t results = 0;
  /// events / max-node-busy-time: the throughput if all nodes ran
  /// concurrently (the slowest node binds the pipeline).
  double pipeline_events_per_sec = 0;
  /// Per-role throughput: events / busiest-node-of-role busy time.
  double local_events_per_sec = 0;
  double intermediate_events_per_sec = 0;
  double root_events_per_sec = 0;
  /// Per-role busy microseconds per emitted result (Fig 12's latency).
  double local_us_per_result = 0;
  double intermediate_us_per_result = 0;
  double root_us_per_result = 0;
  uint64_t local_bytes = 0;
  uint64_t intermediate_bytes = 0;
  /// Raw inputs for custom deployment models (e.g. the bandwidth-capped
  /// Raspberry Pi cluster of Fig 13).
  int64_t max_busy_ns = 0;
  uint64_t root_rx_bytes = 0;
};

/// Drives `events_per_local` generator events into every local node in
/// event-time rounds of `round_us`, then reads the meters.
inline DecentralizedResult RunDecentralized(
    ClusterSystem system, ClusterTopology topology,
    const std::vector<Query>& queries, size_t events_per_local,
    Timestamp mean_interval = 10, uint32_t data_keys = 10,
    Timestamp round_us = 100 * kMillisecond, double marker_probability = 0.0,
    ClusterOptions cluster_options = {}) {
  // Observability sinks for the metrics sidecar: per-node series + slice-
  // lifecycle spans. Declared before the cluster so they outlive its
  // destructor (transport shutdown still reports into node gauges). With
  // DESIS_OBS=OFF both are inert stubs.
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  Cluster cluster(system, topology, cluster_options);
  auto status = cluster.Configure(queries);
  if (!status.ok()) {
    std::fprintf(stderr, "cluster config failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  cluster.AttachObs(&registry, &tracer);

  std::vector<std::vector<Event>> streams(
      static_cast<size_t>(topology.num_locals));
  Timestamp max_ts = 0;
  for (size_t i = 0; i < streams.size(); ++i) {
    DataGeneratorConfig cfg;
    cfg.num_keys = data_keys;
    cfg.mean_interval = mean_interval;
    cfg.marker_probability = marker_probability;
    cfg.seed = 1000 + i;
    streams[i] = DataGenerator(cfg).Take(events_per_local);
    if (streams[i].back().ts > max_ts) max_ts = streams[i].back().ts;
  }

  std::vector<size_t> cursor(streams.size(), 0);
  for (Timestamp t = 0; t <= max_ts + round_us; t += round_us) {
    for (size_t i = 0; i < streams.size(); ++i) {
      const size_t begin = cursor[i];
      while (cursor[i] < streams[i].size() &&
             streams[i][cursor[i]].ts < t + round_us) {
        ++cursor[i];
      }
      if (cursor[i] > begin) {
        cluster.IngestAt(static_cast<int>(i), streams[i].data() + begin,
                         cursor[i] - begin);
      }
    }
    cluster.Advance(t + round_us);
  }
  cluster.Advance(max_ts + kMinute);
  cluster.Drain();

  Sidecar::Instance().NoteTransport(cluster.transport()->name());
  Sidecar::Instance().NoteEngineShards(cluster_options.engine_shards);
  char label[160];
  std::snprintf(label, sizeof(label),
                "%s locals=%d ints=%d layers=%d queries=%zu events=%zu",
                ToString(system).c_str(), topology.num_locals,
                topology.num_intermediates, topology.intermediate_layers,
                queries.size(), events_per_local);
  if (cluster_options.engine_shards > 0) {
    char shards[24];
    std::snprintf(shards, sizeof(shards), " shards=%d",
                  cluster_options.engine_shards);
    if (std::strlen(label) + std::strlen(shards) < sizeof(label)) {
      std::strcat(label, shards);
    }
  }
  // Post-Drain: the transport is quiescent, so the full span payloads are
  // safe to export alongside the registry snapshot in StatsReport().
  Sidecar::Instance().RecordRun(label, cluster.StatsReport(), tracer.ToJson());

  DecentralizedResult out;
  out.total_events = events_per_local * streams.size();
  out.results = cluster.results();
  auto rate = [&](int64_t busy_ns) {
    return busy_ns <= 0 ? 0.0
                        : static_cast<double>(out.total_events) * 1e9 /
                              static_cast<double>(busy_ns);
  };
  out.pipeline_events_per_sec = rate(cluster.MaxBusyNs());
  out.local_events_per_sec = rate(cluster.MaxBusyNsByRole(NodeRole::kLocal) *
                                  topology.num_locals);
  out.intermediate_events_per_sec =
      rate(cluster.MaxBusyNsByRole(NodeRole::kIntermediate));
  out.root_events_per_sec = rate(cluster.MaxBusyNsByRole(NodeRole::kRoot));
  auto us_per_result = [&](int64_t busy_ns) {
    return out.results == 0 ? 0.0
                            : static_cast<double>(busy_ns) / 1000.0 /
                                  static_cast<double>(out.results);
  };
  out.local_us_per_result =
      us_per_result(cluster.MaxBusyNsByRole(NodeRole::kLocal));
  out.intermediate_us_per_result =
      us_per_result(cluster.MaxBusyNsByRole(NodeRole::kIntermediate));
  out.root_us_per_result =
      us_per_result(cluster.MaxBusyNsByRole(NodeRole::kRoot));
  out.local_bytes = cluster.BytesSentByRole(NodeRole::kLocal);
  out.intermediate_bytes = cluster.BytesSentByRole(NodeRole::kIntermediate);
  out.max_busy_ns = cluster.MaxBusyNs();
  out.root_rx_bytes = cluster.root_stats().bytes_received;
  return out;
}

/// Pretty-prints one table row of doubles after a label column.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n%-16s", title.c_str(), "x");
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& cells) {
  std::printf("%-16s", label.c_str());
  for (double v : cells) {
    if (v < 0) {
      std::printf(" %14s", "-");
    } else if (v >= 1e6) {
      std::printf(" %13.2fM", v / 1e6);
    } else if (v >= 1e3) {
      std::printf(" %13.2fk", v / 1e3);
    } else {
      std::printf(" %14.2f", v);
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace desis::bench

#endif  // DESIS_BENCH_HARNESS_H_
