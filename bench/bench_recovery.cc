// Crash-recovery suite (docs/FAULT_TOLERANCE.md, docs/EXPERIMENTS.md): runs
// the three canonical chaos schedules — intermediate crash, local crash with
// reattach, and a transient uplink partition — on the deterministic
// SimLinkTransport, each against an undisturbed baseline over byte-identical
// seeded input. The acceptance contract is exactness: the disturbed run must
// produce the byte-identical canonical window set (zero lost, zero
// duplicated windows), and the crash schedules must actually exercise the
// resend path (nonzero reattaches; replay for the dark-period local).
// Self-checking: exits non-zero on any violation, so CI runs it directly as
// the chaos smoke job.
//
// Recovery latency (virtual microseconds from fault injection to the last
// orphan's replay being flushed) comes from the recovery.reattach_latency_us
// histogram; it is an `_us`/latency series, so desis-inspect stable-only
// diffs skip it and the gate pins only the structural counters.

#include "harness.h"
#include "net/chaos.h"
#include "transport/sim_link_transport.h"

namespace desis::bench {
namespace {

std::vector<Query> RecoveryQueries() {
  Query sum;
  sum.id = 1;
  sum.window = WindowSpec::Tumbling(1000);
  sum.agg = {AggregationFunction::kSum, 0};
  Query avg;
  avg.id = 2;
  avg.window = WindowSpec::Tumbling(2000);
  avg.agg = {AggregationFunction::kAverage, 0};
  return {sum, avg};
}

struct ChaosOutcome {
  std::string canonical;
  uint64_t reattaches = 0;
  uint64_t replayed = 0;
  uint64_t link_drops = 0;
  double latency_p50_us = 0;
  double latency_p95_us = 0;
};

ChaosOutcome RunSchedule(const std::string& label,
                         const ChaosSchedule& schedule,
                         const ChaosStreamConfig& cfg) {
  ClusterOptions options;
  options.recovery.enabled = true;
  Cluster cluster(ClusterSystem::kDesis, {4, 2, 1}, options);
  SimLinkConfig link;
  link.latency_us = 20;
  link.seed = 99;
  auto transport = std::make_unique<SimLinkTransport>(link);
  SimLinkTransport* sim = transport.get();
  cluster.set_transport(std::move(transport));
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  cluster.AttachObs(&registry, &tracer);
  ChaosResultLog log;
  cluster.set_sink(log.Sink());
  auto status = cluster.Configure(RecoveryQueries());
  if (!status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  ChaosRunner(&cluster, cfg).Run(schedule);

  ChaosOutcome out;
  out.canonical = log.Canonical();
  out.reattaches = cluster.recovery_reattaches();
  out.replayed = cluster.recovery_replayed();
  out.link_drops = sim->total_drops();
  if (obs::Histogram* hist = registry.GetHistogram(
          "recovery.reattach_latency_us", {{"system", "Desis"}}, "us");
      hist != nullptr && hist->count() > 0) {
    out.latency_p50_us = hist->Quantile(0.50);
    out.latency_p95_us = hist->Quantile(0.95);
  }
  Sidecar::Instance().NoteTransport(cluster.transport()->name());
  Sidecar::Instance().NoteEngineShards(options.engine_shards);
  Sidecar::Instance().RecordRun(label, cluster.StatsReport(), tracer.ToJson());
  return out;
}

struct Scenario {
  const char* name;
  ChaosSchedule schedule;
  bool expect_reattach = false;
  bool expect_replay = false;
};

int Main() {
  ChaosStreamConfig cfg;
  cfg.end = 20'000;

  // Fault times sit mid-stream so every schedule has live in-flight slices
  // before the fault and visible recovery after it (see ChaosRunner: faults
  // strike mid-round, at the point of maximum in-flight state).
  std::vector<Scenario> scenarios;
  scenarios.push_back({"intermediate crash",
                       {{{ChaosAction::Kind::kCrashIntermediate, 9'500, 0}}},
                       /*expect_reattach=*/true,
                       /*expect_replay=*/false});
  scenarios.push_back({"local crash + reattach",
                       {{{ChaosAction::Kind::kDeclareLocalDead, 8'000, 2},
                         {ChaosAction::Kind::kReattachLocal, 10'000, 2}}},
                       /*expect_reattach=*/true,
                       /*expect_replay=*/true});
  scenarios.push_back({"transient partition",
                       {{{ChaosAction::Kind::kPartitionLocal, 9'000, 1},
                         {ChaosAction::Kind::kHealLocal, 10'000, 1}}},
                       /*expect_reattach=*/false,
                       /*expect_replay=*/false});

  const ChaosOutcome baseline = RunSchedule("baseline", {}, cfg);
  if (baseline.canonical.empty()) {
    std::fprintf(stderr, "FAIL: baseline produced no windows\n");
    return 1;
  }

  PrintHeader("Crash recovery: disturbed vs undisturbed, topology {4,2,1}",
              {"reattaches", "replayed", "link_drops", "lat_p50_us",
               "lat_p95_us"});
  int failures = 0;
  for (Scenario& s : scenarios) {
    const ChaosOutcome out = RunSchedule(s.name, s.schedule, cfg);
    PrintRow(s.name, {static_cast<double>(out.reattaches),
                      static_cast<double>(out.replayed),
                      static_cast<double>(out.link_drops), out.latency_p50_us,
                      out.latency_p95_us});
    if (out.canonical != baseline.canonical) {
      std::fprintf(stderr,
                   "FAIL: '%s' diverged from the undisturbed run "
                   "(lost or duplicated windows)\n",
                   s.name);
      ++failures;
    }
    if (s.expect_reattach && out.reattaches == 0) {
      std::fprintf(stderr, "FAIL: '%s' never reattached an orphan\n", s.name);
      ++failures;
    }
    if (s.expect_replay && out.replayed == 0) {
      std::fprintf(stderr, "FAIL: '%s' never replayed a slice\n", s.name);
      ++failures;
    }
    if (!s.expect_reattach && out.reattaches != 0) {
      std::fprintf(stderr,
                   "FAIL: '%s' reattached %llu orphans — link-level "
                   "retransmission should have healed it alone\n",
                   s.name, static_cast<unsigned long long>(out.reattaches));
      ++failures;
    }
  }

  WriteMetricsSidecar("bench_recovery");
  if (failures == 0) std::printf("all recovery contracts held\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace desis::bench

int main() { return desis::bench::Main(); }
