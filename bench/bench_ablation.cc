// Ablation study for the design choices DESIGN.md calls out:
//  A1: punctuation strategy — precomputed heap vs per-event spec scan.
//  A2: cross-function operator sharing vs per-function groups (same engine
//      otherwise), isolating the sharing gain from the punctuation gain.
//  A3: sort-operator subsumption (ReduceMask) — min/max riding the
//      non-decomposable sort vs keeping a separate decomposable sort.
//  A4: slice-level vs window-level partial shipping (Desis vs Disco wire
//      discipline) on network bytes for overlapping windows.

#include "harness.h"

namespace desis::bench {
namespace {

std::vector<Query> Windows(int n, AggregationFunction fn) {
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Tumbling(((i % 10) + 1) * kSecond);
    q.agg = {fn, 0.5};
    queries.push_back(q);
  }
  return queries;
}

void A1_Punctuation() {
  PrintHeader("A1: punctuation strategy, tumbling avg (events/s)",
              {"heap", "scan"});
  DataGeneratorConfig dcfg;
  auto events = DataGenerator(dcfg).Take(Scaled(500'000));
  for (int n : {1, 10, 100, 1000}) {
    std::vector<double> cells;
    for (PunctuationStrategy strategy :
         {PunctuationStrategy::kPrecomputed, PunctuationStrategy::kPerEventScan}) {
      SlicingEngine engine("ablation", SharingPolicy::kCrossFunction, strategy);
      (void)engine.Configure(Windows(n, AggregationFunction::kAverage));
      cells.push_back(MeasureThroughput(engine, events).events_per_sec);
    }
    PrintRow(std::to_string(n) + " windows", cells);
  }
}

void A2_Sharing() {
  PrintHeader("A2: sharing policy, avg+sum+max+median mix (events/s)",
              {"cross-function", "per-function", "per-query"});
  DataGeneratorConfig dcfg;
  auto events = DataGenerator(dcfg).Take(Scaled(300'000));
  const AggregationFunction fns[] = {
      AggregationFunction::kAverage, AggregationFunction::kSum,
      AggregationFunction::kMax, AggregationFunction::kMedian};
  for (int n : {4, 40, 400}) {
    std::vector<Query> queries;
    for (int i = 0; i < n; ++i) {
      Query q;
      q.id = static_cast<QueryId>(i + 1);
      q.window = WindowSpec::Tumbling(1 * kSecond);
      q.agg = {fns[i % 4], 0.5};
      queries.push_back(q);
    }
    std::vector<double> cells;
    for (SharingPolicy policy :
         {SharingPolicy::kCrossFunction, SharingPolicy::kPerFunction,
          SharingPolicy::kPerQuery}) {
      SlicingEngine engine("ablation", policy,
                           PunctuationStrategy::kPrecomputed);
      (void)engine.Configure(queries);
      cells.push_back(MeasureThroughput(engine, events).events_per_sec);
    }
    PrintRow(std::to_string(n) + " queries", cells);
  }
}

void A3_SortSubsumption() {
  PrintHeader("A3: operator executions, quantile+max, 10M-event equivalent",
              {"with ReduceMask", "hypothetical w/o"});
  DataGeneratorConfig dcfg;
  const size_t n = Scaled(300'000);
  auto events = DataGenerator(dcfg).Take(n);
  std::vector<Query> queries;
  queries.push_back({1,
                     WindowSpec::Tumbling(1 * kSecond),
                     {AggregationFunction::kQuantile, 0.9},
                     {},
                     false});
  queries.push_back(
      {2, WindowSpec::Tumbling(1 * kSecond), {AggregationFunction::kMax, 0}, {}, false});
  DesisEngine engine;
  (void)engine.Configure(queries);
  auto r = MeasureThroughput(engine, events);
  // Without subsumption every event would execute the decomposable sort in
  // addition to the non-decomposable one: exactly one more op per event.
  PrintRow("executions", {static_cast<double>(r.stats.operator_executions),
                          static_cast<double>(r.stats.operator_executions +
                                              r.stats.events)});
}

void A4_SliceVsWindowShipping() {
  PrintHeader(
      "A4: bytes shipped by locals, 100 overlapping sliding windows (KB)",
      {"per-slice (Desis)", "per-window (Disco)"});
  // 100 sliding windows over the same stream: window-level shipping re-sends
  // every overlap, slice-level shipping sends each slice once.
  std::vector<Query> queries;
  for (int i = 0; i < 100; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    q.window = WindowSpec::Sliding(10 * kSecond, ((i % 10) + 1) * kSecond);
    q.agg = {AggregationFunction::kAverage, 0};
    queries.push_back(q);
  }
  std::vector<double> cells;
  for (ClusterSystem system : {ClusterSystem::kDesis, ClusterSystem::kDisco}) {
    auto r = RunDecentralized(system, {1, 1}, queries, Scaled(200'000));
    cells.push_back(static_cast<double>(r.local_bytes) / 1e3);
  }
  PrintRow("local KB", cells);
}

}  // namespace
}  // namespace desis::bench

int main() {
  desis::bench::A1_Punctuation();
  desis::bench::A2_Sharing();
  desis::bench::A3_SortSubsumption();
  desis::bench::A4_SliceVsWindowShipping();
  desis::bench::WriteMetricsSidecar("bench_ablation");
  return 0;
}
