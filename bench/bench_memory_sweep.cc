// Bounded-memory sweep (docs/EXPERIMENTS.md): the cluster-level companion
// to bench_memory_cap. For each key cardinality (1k / 10k / 100k) a
// holistic median/quantile workload runs once on a Desis cluster with an
// effectively unlimited per-local budget to meter the natural resident
// peak, then under per-local budgets of 1/2, 1/3 and 1/4 of that peak —
// nine governed cells in total. Acceptance, checked in-process (non-zero
// exit on violation): every governed run produces the byte-identical
// canonical window set of its uncapped sibling and actually spills.
//
// Unlike bench_memory_cap (engine level), peak <= budget is NOT asserted
// here: a local ships whole sealed slices upstream, so the seal-time k-way
// merge of open-lane spill runs re-residents the full lane and the peak
// floors at the per-slice footprint regardless of budget. The budget
// governs the open-slice buffers between seals (the long-lived state);
// the hard peak contract lives where windows assemble from cold records —
// bench_memory_cap.
//
// The spills also land in the per-node flight recorders (kSpill/kRestore
// events): the sweep dumps every ring at the end and requires at least one
// dump to carry a spill event, so `desis_inspect postmortem` over these
// dumps exercises the state-movement lane of the timeline, not just the
// recovery lane. Budgets derive from the metered peak, never fixed byte
// counts, so the contract holds at any DESIS_BENCH_SCALE.

#include <cstdio>

#include "harness.h"
#include "net/chaos.h"  // ChaosResultLog: canonical window-set comparison

namespace desis::bench {
namespace {

// Fixed event-time extent (density scales, slice layout does not), shared
// by every cell so only cardinality and budget vary across runs.
constexpr Timestamp kTicks = 16000;

std::vector<Query> SweepQueries() {
  std::vector<Query> queries(2);
  queries[0].id = 1;
  queries[0].window = WindowSpec::Tumbling(2000);
  queries[0].agg = {AggregationFunction::kQuantile, 0.9};
  queries[1].id = 2;
  queries[1].window = WindowSpec::Tumbling(8000);
  queries[1].agg = {AggregationFunction::kMedian, 0.5};
  return queries;
}

Event SweepEvent(size_t i, size_t n, uint32_t num_keys) {
  Event e;
  e.ts = static_cast<Timestamp>((i * static_cast<size_t>(kTicks)) / n);
  e.key = static_cast<uint32_t>(i % num_keys);
  e.value = static_cast<double>((i * 7919) % 10000) / 100.0;  // [0, 100)
  return e;
}

struct SweepOutcome {
  std::string canonical;
  uint64_t max_peak = 0;   // max per-local resident peak
  uint64_t spills = 0;     // summed over locals
  uint64_t spill_bytes = 0;
  uint64_t restores = 0;
  bool flight_spill_seen = false;
};

SweepOutcome RunCell(const std::string& label, uint32_t num_keys,
                     uint64_t budget_bytes, size_t num_events) {
  ClusterOptions options;
  options.memory.budget_bytes = budget_bytes;
  options.memory.min_spill_bytes = 256;
  options.memory.spill_dir = ".desis_spill";
  Cluster cluster(ClusterSystem::kDesis, {2, 1}, options);
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  cluster.AttachObs(&registry, &tracer);
  ChaosResultLog log;
  cluster.set_sink(log.Sink());
  if (auto status = cluster.Configure(SweepQueries()); !status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }

  std::vector<Event> batch;
  batch.reserve(512);
  for (size_t i = 0; i < num_events; ++i) {
    batch.push_back(SweepEvent(i, num_events, num_keys));
    if (batch.size() == 512) {
      cluster.IngestAt(static_cast<int>(i / 512) % 2, batch.data(),
                       batch.size());
      cluster.Advance(batch.back().ts);
      batch.clear();
    }
  }
  if (!batch.empty()) cluster.IngestAt(0, batch.data(), batch.size());
  cluster.Advance(kTicks + 64000);
  cluster.Drain();

  SweepOutcome out;
  out.canonical = log.Canonical();
  for (int i = 0; i < cluster.num_locals(); ++i) {
    const mem::MemoryGovernor* gov = cluster.LocalMemoryGovernor(i);
    if (gov == nullptr) continue;
    out.max_peak = std::max(out.max_peak, gov->peak_resident());
    out.spills += gov->spills();
    out.spill_bytes += gov->spill_bytes();
    out.restores += gov->restores();
  }
#if DESIS_OBS_ENABLED
  // The governed state movement must be visible to the black box too: any
  // local that spilled recorded kSpill events in its flight ring.
  const std::vector<std::string> dumps =
      cluster.DumpFlightRecorders(".", "on_demand");
  for (const std::string& path : dumps) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) continue;
    std::string text;
    char chunk[4096];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      text.append(chunk, got);
    }
    std::fclose(f);
    if (text.find("\"kind\":\"spill\"") != std::string::npos) {
      out.flight_spill_seen = true;
    }
    std::remove(path.c_str());
  }
#endif
  Sidecar::Instance().NoteTransport(cluster.transport()->name());
  Sidecar::Instance().NoteEngineShards(options.engine_shards);
  Sidecar::Instance().RecordRun(label, cluster.StatsReport(), tracer.ToJson());
  return out;
}

int Main() {
  const size_t num_events = Scaled(192 * 1024);
  int failures = 0;

  PrintHeader("Memory sweep: per-local budgets vs uncapped, cluster {2,1}",
              {"budget_kb", "peak_kb", "spills", "spill_kb", "restores"});

  for (const uint32_t num_keys : {1'000u, 10'000u, 100'000u}) {
    const std::string card = std::to_string(num_keys) + " keys";
    // Metering run: a budget far above any plausible footprint keeps
    // accounting on without ever triggering relief.
    const SweepOutcome uncapped = RunCell(
        card + " uncapped", num_keys, uint64_t{1} << 40, num_events);
    PrintRow(card + " uncapped",
             {0.0, static_cast<double>(uncapped.max_peak) / 1024.0, 0.0, 0.0,
              0.0});
    if (uncapped.canonical.empty()) {
      std::fprintf(stderr, "FAIL: '%s' uncapped produced no windows\n",
                   card.c_str());
      ++failures;
      continue;
    }
    if (uncapped.spills != 0) {
      std::fprintf(stderr, "FAIL: '%s' uncapped run spilled\n", card.c_str());
      ++failures;
    }

    for (const uint64_t divisor : {uint64_t{2}, uint64_t{3}, uint64_t{4}}) {
      const uint64_t budget = uncapped.max_peak / divisor;
      const std::string label = card + " capped 1/" + std::to_string(divisor);
      const SweepOutcome capped = RunCell(label, num_keys, budget, num_events);
      PrintRow(label, {static_cast<double>(budget) / 1024.0,
                       static_cast<double>(capped.max_peak) / 1024.0,
                       static_cast<double>(capped.spills),
                       static_cast<double>(capped.spill_bytes) / 1024.0,
                       static_cast<double>(capped.restores)});
      if (capped.canonical != uncapped.canonical) {
        std::fprintf(stderr,
                     "FAIL: '%s' diverged from the uncapped window set\n",
                     label.c_str());
        ++failures;
      }
      if (capped.spills == 0) {
        std::fprintf(stderr, "FAIL: '%s' never spilled\n", label.c_str());
        ++failures;
      }
#if DESIS_OBS_ENABLED
      if (!capped.flight_spill_seen) {
        std::fprintf(stderr,
                     "FAIL: '%s' spilled but no flight recorder carries a "
                     "spill event\n",
                     label.c_str());
        ++failures;
      }
#endif
    }
  }

  WriteMetricsSidecar("bench_memory_sweep");
  if (failures == 0) std::printf("all memory-sweep contracts held\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace desis::bench

int main() { return desis::bench::Main(); }
