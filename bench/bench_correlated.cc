// The 10k-query correlated-window suite (docs/EXPERIMENTS.md): thousands
// of queries over correlated windows (1s feeders, 5s/10s mid-tiers, 60s
// coarse tumbling and sliding windows, all integer multiples of each
// other) on 100 key lanes, run twice on the same deterministic streams —
// once on the static analyzer plan, once under the cost-based optimizer
// (per-lane mask narrowing + factor-window rewriting).
//
// The acceptance contract this bench demonstrates:
//   - window results are byte-identical (integer-valued events, so sums /
//     counts / extrema are exactly representable and merge order cannot
//     change them) — checked via an order-independent fingerprint;
//   - group.operator_evals drops >= 2x under the optimized plan;
//   - the aggregate sharing ratio (queries x events / operator evals) is
//     reported per run and lands in the sidecar for desis-inspect.
//
// Scale: DESIS_BENCH_SCALE scales both the query count (default 10'000)
// and the per-local event count; the CI gate runs at 0.01 against
// bench/baselines/correlated_baseline.json.

#include <cstring>

#include "harness.h"

namespace desis::bench {
namespace {

std::vector<Query> CorrelatedQueries(size_t n) {
  std::vector<Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query q;
    q.id = static_cast<QueryId>(i + 1);
    switch (i % 5) {
      case 0: q.window = WindowSpec::Tumbling(1 * kSecond); break;
      case 1: q.window = WindowSpec::Tumbling(5 * kSecond); break;
      case 2: q.window = WindowSpec::Tumbling(60 * kSecond); break;
      case 3: q.window = WindowSpec::Sliding(60 * kSecond, 5 * kSecond); break;
      default: q.window = WindowSpec::Tumbling(10 * kSecond); break;
    }
    // Mostly sums, so most key lanes narrow to one operator; the sprinkled
    // averages and maxima keep the *group* mask wide (sum+count+dsort),
    // which is exactly what the static plan charges every lane for.
    const size_t r = i % 10;
    q.agg = {r < 8 ? AggregationFunction::kSum
                   : (r == 8 ? AggregationFunction::kAverage
                             : AggregationFunction::kMax),
             0.5};
    q.predicate = Predicate::KeyEquals(static_cast<uint32_t>(i % 100));
    queries.push_back(q);
  }
  return queries;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct CorrelatedRun {
  uint64_t results = 0;
  uint64_t fingerprint = 0;  // order-independent over all emitted windows
  uint64_t operator_evals = 0;
  double sharing_ratio = 0;
  uint32_t rewrites = 0;
  uint32_t dag_depth = 1;
};

CorrelatedRun RunCorrelated(const std::vector<Query>& queries, bool optimize,
                            size_t events_per_local) {
  obs::MetricsRegistry registry;
  obs::SliceTracer tracer(kSidecarTraceCapacity);
  ClusterOptions options;
  options.optimize_plans = optimize;
  Cluster cluster(ClusterSystem::kDesis, {2, 1}, options);
  auto status = cluster.Configure(queries);
  if (!status.ok()) {
    std::fprintf(stderr, "configure failed: %s\n", status.ToString().c_str());
    std::abort();
  }
  cluster.AttachObs(&registry, &tracer);

  CorrelatedRun out;
  cluster.set_sink([&out](const WindowResult& r) {
    ++out.results;
    uint64_t bits = 0;
    std::memcpy(&bits, &r.value, sizeof(bits));
    uint64_t h = Mix64(r.query_id ^ Mix64(static_cast<uint64_t>(r.window_start)));
    h = Mix64(h ^ static_cast<uint64_t>(r.window_end));
    h = Mix64(h ^ bits) ^ Mix64(r.event_count);
    out.fingerprint += h;  // commutative: emission order may differ
  });

  // Deterministic integer-valued streams, one event per millisecond per
  // local: every aggregate in the query set is exactly representable.
  const Timestamp step = kMillisecond;
  std::vector<std::vector<Event>> streams(2);
  Timestamp max_ts = 0;
  for (uint32_t local = 0; local < 2; ++local) {
    streams[local].reserve(events_per_local);
    for (size_t j = 0; j < events_per_local; ++j) {
      const Timestamp ts = static_cast<Timestamp>(j + 1) * step + local * 7;
      streams[local].push_back(
          {ts, static_cast<uint32_t>((j * 13 + local * 37) % 100),
           static_cast<double>((j + local) % 10), kNoMarker});
      max_ts = std::max(max_ts, ts);
    }
  }
  std::vector<size_t> cursor(streams.size(), 0);
  const Timestamp round = 100 * kMillisecond;
  for (Timestamp t = 0; t <= max_ts + round; t += round) {
    for (size_t i = 0; i < streams.size(); ++i) {
      const size_t begin = cursor[i];
      while (cursor[i] < streams[i].size() &&
             streams[i][cursor[i]].ts < t + round) {
        ++cursor[i];
      }
      if (cursor[i] > begin) {
        cluster.IngestAt(static_cast<int>(i), streams[i].data() + begin,
                         cursor[i] - begin);
      }
    }
    cluster.Advance(t + round);
  }
  cluster.Advance(max_ts + 2 * kMinute);
  cluster.Drain();

  // Cost attribution out of the registry: total operator evaluations and
  // the fleet-wide sharing ratio (queries x events / evals).
  static const char* kOps[] = {"sum", "count", "mult", "dsort", "ndsort",
                               "sumsq"};
  double work = 0;
  for (const QueryGroup& g : cluster.QueryGroupsSnapshot()) {
    const obs::Labels labels = {{"group", std::to_string(g.id)}};
    obs::Counter* events_in =
        registry.GetCounter("group.events_in", labels, "events");
    if (events_in != nullptr) {
      work += static_cast<double>(g.queries.size()) *
              static_cast<double>(events_in->value());
    }
    for (const char* op : kOps) {
      obs::Labels op_labels = labels;
      op_labels.emplace_back("op", op);
      obs::Counter* evals =
          registry.GetCounter("group.operator_evals", op_labels, "evals");
      if (evals != nullptr) out.operator_evals += evals->value();
    }
    out.rewrites += g.plan.rewrites;
    out.dag_depth = std::max(out.dag_depth, g.plan.dag_depth);
  }
  if (out.operator_evals > 0) {
    out.sharing_ratio = work / static_cast<double>(out.operator_evals);
  }

  Sidecar::Instance().NoteTransport(cluster.transport()->name());
  Sidecar::Instance().NoteEngineShards(options.engine_shards);
  char label[96];
  std::snprintf(label, sizeof(label), "%s queries=%zu events=%zu",
                optimize ? "optimized" : "static", queries.size(),
                events_per_local);
  Sidecar::Instance().RecordRun(label, cluster.StatsReport(), tracer.ToJson());
  return out;
}

int Main() {
  const size_t num_queries = Scaled(10'000);
  const size_t events_per_local = Scaled(200'000);
  const auto queries = CorrelatedQueries(num_queries);

  PrintHeader("Correlated windows: static plan vs cost-based optimizer",
              {"results", "op_evals", "sharing", "rewrites", "dag_depth"});
  const CorrelatedRun baseline =
      RunCorrelated(queries, /*optimize=*/false, events_per_local);
  PrintRow("static", {static_cast<double>(baseline.results),
                      static_cast<double>(baseline.operator_evals),
                      baseline.sharing_ratio,
                      static_cast<double>(baseline.rewrites),
                      static_cast<double>(baseline.dag_depth)});
  const CorrelatedRun optimized =
      RunCorrelated(queries, /*optimize=*/true, events_per_local);
  PrintRow("optimized", {static_cast<double>(optimized.results),
                         static_cast<double>(optimized.operator_evals),
                         optimized.sharing_ratio,
                         static_cast<double>(optimized.rewrites),
                         static_cast<double>(optimized.dag_depth)});

  int failures = 0;
  if (baseline.results != optimized.results ||
      baseline.fingerprint != optimized.fingerprint) {
    std::fprintf(stderr,
                 "FAIL: optimized results diverge from static plan "
                 "(results %llu vs %llu, fingerprint %016llx vs %016llx)\n",
                 static_cast<unsigned long long>(baseline.results),
                 static_cast<unsigned long long>(optimized.results),
                 static_cast<unsigned long long>(baseline.fingerprint),
                 static_cast<unsigned long long>(optimized.fingerprint));
    ++failures;
  } else {
    std::printf("results byte-identical: %llu windows, fingerprint %016llx\n",
                static_cast<unsigned long long>(baseline.results),
                static_cast<unsigned long long>(baseline.fingerprint));
  }
#if DESIS_OBS_ENABLED
  const double ratio =
      optimized.operator_evals > 0
          ? static_cast<double>(baseline.operator_evals) /
                static_cast<double>(optimized.operator_evals)
          : 0.0;
  std::printf("operator_evals reduction: %.2fx (sharing ratio %.2f -> %.2f)\n",
              ratio, baseline.sharing_ratio, optimized.sharing_ratio);
  if (ratio < 2.0) {
    std::fprintf(stderr, "FAIL: operator_evals reduction %.2fx < 2x\n", ratio);
    ++failures;
  }
  if (optimized.rewrites == 0) {
    std::fprintf(stderr, "FAIL: optimizer installed no factor edges\n");
    ++failures;
  }
#endif
  WriteMetricsSidecar("bench_correlated");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace desis::bench

int main() { return desis::bench::Main(); }
