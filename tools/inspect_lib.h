#ifndef DESIS_TOOLS_INSPECT_LIB_H_
#define DESIS_TOOLS_INSPECT_LIB_H_

// desis-inspect core logic, header-only so tests/test_inspect.cc exercises
// exactly what the CLI runs. Consumes the metrics sidecars written by
// bench/harness.h (schema: docs/METRICS.md):
//
//   {"bench":..., "scale":..., "obs_enabled":..., "meta":{...},
//    "runs":[{"run":label, "report":{...}, "spans":[...]}, ...]}
//
// Three views: a health/cost summary (per-group sharing ratios, per-node
// watermark-lag/backlog gauges), a noise-aware diff of two sidecars (the CI
// perf-regression gate), and a merged cross-node Chrome trace.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "json_lite.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace desis::tools {

inline bool LoadJsonFile(const std::string& path, JsonValue* out,
                         std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (!JsonParser::Parse(text, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

/// The registry snapshot of a run: reports embed it as
/// report.obs.metrics.metrics (an array of series objects).
inline const JsonValue& MetricsOf(const JsonValue& run) {
  return run["report"]["obs"]["metrics"]["metrics"];
}

// ------------------------------------------------------- cost attribution --

/// Per-query-group cost attribution, reassembled from the group.* series.
struct GroupCost {
  std::string group;
  double queries = 0;
  double operators = 0;
  double events_in = 0;
  double operator_evals = 0;
  // Optimizer plan shape (opt.* series; 0 when the group runs the static
  // plan): factor edges installed and factor-DAG depth.
  double opt_rewrites = 0;
  double opt_dag_depth = 0;

  /// queries*events / operator_evals: how many per-query operator
  /// evaluations one shared evaluation replaced (the paper's sharing win,
  /// Figs 6-9). 1.0 means no sharing; <1 happens for a single query whose
  /// function decomposes into several operators (average = sum + count).
  double SharingRatio() const {
    return operator_evals > 0 ? queries * events_in / operator_evals : 0;
  }
};

inline std::vector<GroupCost> ExtractGroupCosts(const JsonValue& metrics) {
  std::map<std::string, GroupCost> by_group;
  for (const JsonValue& m : metrics.array) {
    const std::string name = m["name"].AsString();
    if (name.rfind("group.", 0) != 0 && name.rfind("opt.", 0) != 0) continue;
    const std::string group = m["labels"]["group"].AsString();
    if (group.empty()) continue;
    GroupCost& gc = by_group[group];
    gc.group = group;
    const double value = m["value"].AsNumber();
    if (name == "group.queries") gc.queries = value;
    if (name == "group.operators") gc.operators = value;
    if (name == "group.events_in") gc.events_in = value;
    if (name == "group.operator_evals") gc.operator_evals += value;
    if (name == "opt.rewrites") gc.opt_rewrites = value;
    if (name == "opt.dag_depth") gc.opt_dag_depth = value;
  }
  std::vector<GroupCost> out;
  for (auto& [key, gc] : by_group) out.push_back(gc);
  return out;
}

/// Fleet-wide sharing win: total per-query operator evaluations the shared
/// plans replaced, over the evaluations actually performed. The headline
/// number of the 10k-query experiments (EXPERIMENTS.md).
inline double AggregateSharingRatio(const std::vector<GroupCost>& groups) {
  double work = 0, evals = 0;
  for (const GroupCost& gc : groups) {
    work += gc.queries * gc.events_in;
    evals += gc.operator_evals;
  }
  return evals > 0 ? work / evals : 0;
}

/// Group membership churn latency, reassembled from the opt.group_churn_ns
/// histograms the cluster records around AddQuery / RemoveQuery.
struct ChurnStat {
  std::string op;  // "add" | "remove"
  double count = 0;
  double p50_ns = 0;
  double p95_ns = 0;
};

inline std::vector<ChurnStat> ExtractChurn(const JsonValue& metrics) {
  std::vector<ChurnStat> out;
  for (const JsonValue& m : metrics.array) {
    if (m["name"].AsString() != "opt.group_churn_ns") continue;
    ChurnStat cs;
    cs.op = m["labels"]["op"].AsString("?");
    cs.count = m["count"].AsNumber();
    cs.p50_ns = m["p50"].AsNumber();
    cs.p95_ns = m["p95"].AsNumber();
    out.push_back(cs);
  }
  std::sort(out.begin(), out.end(),
            [](const ChurnStat& a, const ChurnStat& b) { return a.op < b.op; });
  return out;
}

// --------------------------------------------------------- cluster health --

/// Per-node health gauges, reassembled from the health.* series.
struct NodeHealthRow {
  std::string node;
  std::string role;
  double watermark_lag_us = 0;
  double backlog = 0;
  double reorder_depth = 0;
  double mailbox_depth = 0;
  bool any = false;
};

inline std::vector<NodeHealthRow> ExtractHealth(const JsonValue& metrics) {
  std::map<std::string, NodeHealthRow> by_node;
  for (const JsonValue& m : metrics.array) {
    const std::string name = m["name"].AsString();
    if (name.rfind("health.", 0) != 0) continue;
    const std::string node = m["labels"]["node"].AsString();
    NodeHealthRow& row = by_node[node];
    row.node = node;
    row.role = m["labels"]["role"].AsString();
    row.any = true;
    const double value = m["value"].AsNumber();
    if (name == "health.watermark_lag_us") row.watermark_lag_us = value;
    if (name == "health.backlog") row.backlog = value;
    if (name == "health.reorder_depth") row.reorder_depth = value;
    if (name == "health.mailbox_depth") row.mailbox_depth = value;
  }
  std::vector<NodeHealthRow> out;
  for (auto& [key, row] : by_node) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const NodeHealthRow& a, const NodeHealthRow& b) {
              return std::atoi(a.node.c_str()) < std::atoi(b.node.c_str());
            });
  return out;
}

// --------------------------------------------------------- crash recovery --

/// Crash-recovery counters from the report's "recovery" section, present
/// iff the run had recovery enabled (schema: docs/FAULT_TOLERANCE.md).
/// Sourced from the report rather than the metrics registry so the view
/// also works on DESIS_OBS=OFF sidecars.
struct RecoveryStat {
  bool present = false;
  double reattaches = 0;
  double replayed_slices = 0;
  double stale_dropped = 0;
  double resend_buffer_bytes = 0;
  double resend_overflow_drops = 0;
  double messages_dropped = 0;  // totals.messages_dropped, for Suspect()

  /// A lossy run that never replayed anything deserves a second look:
  /// frames were dropped on the wire yet no recovery traffic made up for
  /// them. Link-level retransmission can legitimately cover every drop
  /// (transient partitions heal below the resend buffer), but silent data
  /// loss looks exactly the same from the counters — so flag it.
  bool Suspect() const {
    return present && messages_dropped > 0 && replayed_slices == 0;
  }
};

inline RecoveryStat ExtractRecovery(const JsonValue& report) {
  RecoveryStat rs;
  const JsonValue& rec = report["recovery"];
  if (!rec.is_object()) return rs;
  rs.present = true;
  rs.reattaches = rec["reattaches"].AsNumber();
  rs.replayed_slices = rec["replayed_slices"].AsNumber();
  rs.stale_dropped = rec["stale_dropped"].AsNumber();
  rs.resend_buffer_bytes = rec["resend_buffer_bytes"].AsNumber();
  rs.resend_overflow_drops = rec["resend_overflow_drops"].AsNumber();
  rs.messages_dropped = report["totals"]["messages_dropped"].AsNumber();
  return rs;
}

// ------------------------------------------------------- memory governance --

/// Memory-governor counters summed over every engine.* series in the run's
/// metrics snapshot (one series per governed engine or shard). Absent
/// unless the run had a memory budget (DESIGN.md §3, memory governance).
struct MemoryStat {
  bool present = false;
  double bytes_resident = 0;
  double spills = 0;
  double spill_bytes = 0;
  double restores = 0;
  double sketch_lanes = 0;

  /// Spill thrash: state is restored far more often than it is spilled —
  /// the same cold buffers bounce between disk and memory on every window
  /// close, so the budget is too tight for the live working set. Spilling
  /// itself is healthy; an order of magnitude more restores is not.
  bool Suspect() const { return spills > 0 && restores > 8 * spills; }
};

inline MemoryStat ExtractMemory(const JsonValue& metrics) {
  MemoryStat ms;
  for (const JsonValue& m : metrics.array) {
    const std::string name = m["name"].AsString();
    const double value = m["value"].AsNumber();
    if (name == "engine.bytes_resident") {
      ms.bytes_resident += value;
    } else if (name == "engine.spills") {
      ms.spills += value;
    } else if (name == "engine.spill_bytes") {
      ms.spill_bytes += value;
    } else if (name == "engine.spill_restores") {
      ms.restores += value;
    } else if (name == "engine.sketch_lanes") {
      ms.sketch_lanes += value;
    } else {
      continue;
    }
    ms.present = true;
  }
  return ms;
}

// ------------------------------------------------------------- span merge --

/// Rebuilds SliceSpans from one run's exported "spans" array (the inverse
/// of SliceTracer::ToJson). Unknown phases/roles are skipped.
inline std::vector<obs::SliceSpan> SpansFromJson(const JsonValue& spans) {
  std::vector<obs::SliceSpan> out;
  for (const JsonValue& s : spans.array) {
    obs::SliceSpan span;
    if (!obs::PhaseFromString(s["phase"].AsString(), &span.phase)) continue;
    if (!obs::SpanRoleFromName(s["role"].AsString(), &span.role)) continue;
    span.slice_id = static_cast<uint64_t>(s["slice_id"].AsNumber());
    span.group_id = static_cast<uint32_t>(s["group"].AsNumber());
    span.query_id = static_cast<uint64_t>(s["query"].AsNumber());
    span.node_id = static_cast<uint32_t>(s["node"].AsNumber());
    span.virtual_ts = static_cast<Timestamp>(s["virtual_ts"].AsNumber());
    span.real_ns = static_cast<int64_t>(s["real_ns"].AsNumber());
    out.push_back(span);
  }
  return out;
}

/// One Chrome trace over every span of every run in the sidecar — the
/// cross-node correlation view (a slice's life across local, intermediate
/// and root shares one global async id).
inline std::string MergedChromeTrace(const JsonValue& sidecar) {
  std::vector<obs::SliceSpan> all;
  for (const JsonValue& run : sidecar["runs"].array) {
    std::vector<obs::SliceSpan> spans = SpansFromJson(run["spans"]);
    all.insert(all.end(), spans.begin(), spans.end());
  }
  return obs::ChromeTraceFromSpans(std::move(all));
}

// ---------------------------------------------------------------- summary --

inline std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<int64_t>(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

inline std::string Summarize(const JsonValue& sidecar) {
  std::string out;
  out += "bench: " + sidecar["bench"].AsString("?") + "\n";
  const JsonValue& meta = sidecar["meta"];
  if (meta.is_object()) {
    out += "meta:  git=" + meta["git_sha"].AsString("?") +
           " build=" + meta["build_type"].AsString("?") +
           " written=" + meta["written_utc"].AsString("?") + " transports=[";
    const JsonValue& transports = meta["transports"];
    for (size_t i = 0; i < transports.array.size(); ++i) {
      out += (i == 0 ? "" : ",") + transports.array[i].AsString();
    }
    out += "]";
    const JsonValue& shards = meta["engine_shards"];
    if (shards.is_array()) {
      out += " engine_shards=[";
      for (size_t i = 0; i < shards.array.size(); ++i) {
        out += (i == 0 ? "" : ",") + FormatDouble(shards.array[i].AsNumber());
      }
      out += "]";
    }
    if (meta["hw_threads"].is_number()) {
      out += " hw_threads=" + FormatDouble(meta["hw_threads"].AsNumber());
    }
    out += "\n";
  }
  for (const JsonValue& run : sidecar["runs"].array) {
    out += "\nrun: " + run["run"].AsString("?") + "\n";
    const JsonValue& report = run["report"];
    if (report["events_per_sec"].is_number()) {
      out += "  events_per_sec: " +
             FormatDouble(report["events_per_sec"].AsNumber()) + "\n";
    }
    const JsonValue& metrics = MetricsOf(run);
    const std::vector<GroupCost> groups = ExtractGroupCosts(metrics);
    for (const GroupCost& gc : groups) {
      out += "  group " + gc.group + ": queries=" + FormatDouble(gc.queries) +
             " operators=" + FormatDouble(gc.operators) +
             " events_in=" + FormatDouble(gc.events_in) +
             " operator_evals=" + FormatDouble(gc.operator_evals) +
             " sharing_ratio=" + FormatDouble(gc.SharingRatio());
      if (gc.opt_rewrites > 0 || gc.opt_dag_depth > 0) {
        out += " rewrites=" + FormatDouble(gc.opt_rewrites) +
               " dag_depth=" + FormatDouble(gc.opt_dag_depth);
      }
      out += "\n";
    }
    if (groups.size() > 1) {
      out += "  sharing_ratio (all groups): " +
             FormatDouble(AggregateSharingRatio(groups)) + "\n";
    }
    for (const ChurnStat& cs : ExtractChurn(metrics)) {
      out += "  churn " + cs.op + ": count=" + FormatDouble(cs.count) +
             " p50_ns=" + FormatDouble(cs.p50_ns) +
             " p95_ns=" + FormatDouble(cs.p95_ns) + "\n";
    }
    for (const NodeHealthRow& row : ExtractHealth(metrics)) {
      out += "  node " + row.node + " (" + row.role +
             "): watermark_lag_us=" + FormatDouble(row.watermark_lag_us) +
             " backlog=" + FormatDouble(row.backlog) +
             " reorder_depth=" + FormatDouble(row.reorder_depth) +
             " mailbox_depth=" + FormatDouble(row.mailbox_depth) + "\n";
    }
    const RecoveryStat rs = ExtractRecovery(report);
    if (rs.present) {
      out += "  recovery: reattaches=" + FormatDouble(rs.reattaches) +
             " replayed_slices=" + FormatDouble(rs.replayed_slices) +
             " stale_dropped=" + FormatDouble(rs.stale_dropped) +
             " resend_buffer_bytes=" + FormatDouble(rs.resend_buffer_bytes) +
             " overflow_drops=" + FormatDouble(rs.resend_overflow_drops) +
             "\n";
      if (rs.Suspect()) {
        out += "  SUSPECT: " + FormatDouble(rs.messages_dropped) +
               " messages dropped but 0 slices replayed — verify the drops "
               "were covered by link-level retransmission "
               "(docs/FAULT_TOLERANCE.md)\n";
      }
    }
    const MemoryStat ms = ExtractMemory(metrics);
    if (ms.present) {
      out += "  memory: bytes_resident=" + FormatDouble(ms.bytes_resident) +
             " spills=" + FormatDouble(ms.spills) +
             " spill_bytes=" + FormatDouble(ms.spill_bytes) +
             " restores=" + FormatDouble(ms.restores) +
             " sketch_lanes=" + FormatDouble(ms.sketch_lanes) + "\n";
      if (ms.Suspect()) {
        out += "  SUSPECT: " + FormatDouble(ms.restores) + " restores vs " +
               FormatDouble(ms.spills) +
               " spills — spill thrash; the memory budget is too tight for "
               "the live working set (DESIGN.md §3, memory governance)\n";
      }
    }
    const JsonValue& obs = report["obs"];
    if (obs["spans_recorded"].is_number()) {
      out += "  spans: recorded=" +
             FormatDouble(obs["spans_recorded"].AsNumber()) +
             " dropped=" + FormatDouble(obs["spans_dropped"].AsNumber()) +
             "\n";
    }
  }
  return out;
}

// ------------------------------------------------------------------- diff --

struct DiffOptions {
  /// Relative band; a worse-direction change beyond it is a regression.
  double threshold = 0.15;
  /// Compare only deterministic metrics (byte/event/slice counters);
  /// wall-clock-derived numbers (throughput, busy time, latencies) are
  /// skipped. For CI machines with unpredictable noise.
  bool stable_only = false;
};

struct DiffFinding {
  std::string run;
  std::string metric;
  double before = 0;
  double after = 0;
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffFinding> findings;  // changed metrics, regressions first
  size_t compared = 0;
  bool comparable = true;  // same bench + obs setting on both sides

  bool HasRegression() const {
    for (const DiffFinding& f : findings) {
      if (f.regression) return true;
    }
    return false;
  }
};

/// Wall-clock-derived metric names: real on a quiet machine, noise in CI.
/// The shard speedup/efficiency ratios are quotients of wall-clock rates,
/// so they inherit the noise.
inline bool IsNoisyMetric(const std::string& name) {
  return name.find("events_per_sec") != std::string::npos ||
         name.find("busy_ns") != std::string::npos ||
         name.find("_ns") != std::string::npos ||
         name.find("us_per_result") != std::string::npos ||
         name.find("latency") != std::string::npos ||
         name.find("watermark_lag") != std::string::npos ||
         name.find("speedup") != std::string::npos ||
         name.find("scaling_efficiency") != std::string::npos;
}

/// Direction of badness: for these, only a *decrease* is a regression; for
/// everything else any drift beyond the band is flagged.
inline bool HigherIsBetter(const std::string& name) {
  return name.find("events_per_sec") != std::string::npos ||
         name.find("sharing_ratio") != std::string::npos ||
         name.find("speedup") != std::string::npos ||
         name.find("scaling_efficiency") != std::string::npos;
}

/// Flattens the numeric leaves of a report subtree into dotted paths
/// ("roles.local.bytes_sent"). The obs subtree is handled separately.
inline void FlattenNumbers(const JsonValue& v, const std::string& prefix,
                           std::map<std::string, double>* out) {
  if (v.is_number()) {
    (*out)[prefix] = v.number;
    return;
  }
  if (!v.is_object()) return;
  for (const auto& [key, child] : v.object) {
    if (key == "obs") continue;
    FlattenNumbers(child, prefix.empty() ? key : prefix + "." + key, out);
  }
}

/// One run's comparable scalar metrics: report leaves, obs counters, and
/// the derived per-group sharing ratio.
inline std::map<std::string, double> ComparableMetrics(const JsonValue& run) {
  std::map<std::string, double> out;
  FlattenNumbers(run["report"], "", &out);
  const JsonValue& metrics = MetricsOf(run);
  for (const JsonValue& m : metrics.array) {
    if (m["type"].AsString() != "counter") continue;  // gauges are moments
    std::string key = "obs." + m["name"].AsString();
    for (const auto& [k, v] : m["labels"].object) {
      key += "{" + k + "=" + v.AsString() + "}";
    }
    out[key] = m["value"].AsNumber();
  }
  for (const GroupCost& gc : ExtractGroupCosts(metrics)) {
    out["group." + gc.group + ".sharing_ratio"] = gc.SharingRatio();
  }
  return out;
}

/// Run keys, de-duplicated by occurrence: sweeps record the same label
/// several times ("Desis" at n=1,10,100,1000), and positional matching
/// would silently pair different sweep points.
inline std::vector<std::pair<std::string, const JsonValue*>> KeyedRuns(
    const JsonValue& sidecar) {
  std::vector<std::pair<std::string, const JsonValue*>> out;
  std::map<std::string, int> seen;
  for (const JsonValue& run : sidecar["runs"].array) {
    const std::string label = run["run"].AsString();
    const int n = seen[label]++;
    out.emplace_back(n == 0 ? label : label + "#" + std::to_string(n), &run);
  }
  return out;
}

/// The distinct engine-shard counts recorded in a sidecar's meta header.
/// Sidecars written before the sharded engine existed have no such list.
inline std::vector<double> MetaEngineShards(const JsonValue& sidecar) {
  std::vector<double> out;
  for (const JsonValue& v : sidecar["meta"]["engine_shards"].array) {
    out.push_back(v.AsNumber());
  }
  return out;
}

/// Whether the sidecar's runs had the health watchdog thread live (meta
/// "watchdog" entry, written by Sidecar::NoteWatchdog). Sidecars predating
/// the watchdog have no entry and read as off.
inline bool MetaWatchdogEnabled(const JsonValue& sidecar) {
  return sidecar["meta"]["watchdog"]["enabled"].boolean;
}

inline DiffResult DiffSidecars(const JsonValue& before, const JsonValue& after,
                               const DiffOptions& options) {
  DiffResult result;
  if (before["bench"].AsString() != after["bench"].AsString() ||
      before["obs_enabled"].boolean != after["obs_enabled"].boolean ||
      // Runs with different parallelism configurations measure different
      // code paths — never silently compare, say, a 4-shard run against
      // the serial seed.
      MetaEngineShards(before) != MetaEngineShards(after) ||
      // A live watchdog thread samples (and locks) alongside the run;
      // comparing a watchdog-on run against a watchdog-off baseline would
      // report its overhead as a regression in the workload under test.
      MetaWatchdogEnabled(before) != MetaWatchdogEnabled(after)) {
    result.comparable = false;
    return result;
  }
  std::map<std::string, const JsonValue*> after_runs;
  for (const auto& [key, run] : KeyedRuns(after)) after_runs[key] = run;
  for (const auto& [label, run_ptr] : KeyedRuns(before)) {
    const JsonValue& run = *run_ptr;
    auto it = after_runs.find(label);
    if (it == after_runs.end()) continue;
    const std::map<std::string, double> a = ComparableMetrics(run);
    const std::map<std::string, double> b = ComparableMetrics(*it->second);
    for (const auto& [metric, before_v] : a) {
      auto bt = b.find(metric);
      if (bt == b.end()) continue;
      if (options.stable_only && IsNoisyMetric(metric)) continue;
      ++result.compared;
      const double after_v = bt->second;
      const double base = std::fabs(before_v);
      const double rel =
          base > 0 ? (after_v - before_v) / base : (after_v != 0 ? 1.0 : 0.0);
      if (std::fabs(rel) <= options.threshold) continue;
      DiffFinding finding;
      finding.run = label;
      finding.metric = metric;
      finding.before = before_v;
      finding.after = after_v;
      finding.regression = HigherIsBetter(metric) ? rel < 0 : true;
      result.findings.push_back(finding);
    }
  }
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const DiffFinding& x, const DiffFinding& y) {
                     return x.regression > y.regression;
                   });
  return result;
}

inline std::string FormatDiff(const DiffResult& result,
                              const DiffOptions& options) {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", options.threshold * 100);
  out += "compared " + std::to_string(result.compared) + " metrics, band +-" +
         buf + "%\n";
  for (const DiffFinding& f : result.findings) {
    out += std::string(f.regression ? "REGRESSION " : "change     ") + f.run +
           " :: " + f.metric + ": " + FormatDouble(f.before) + " -> " +
           FormatDouble(f.after) + "\n";
  }
  if (result.findings.empty()) out += "no changes beyond the band\n";
  return out;
}

// ---------------------------------------------------------------- history --

/// One JSONL line for BENCH_history.jsonl: bench + provenance + the headline
/// number of every run. Appended by the CI gate after each main-branch run.
inline std::string HistoryLine(const JsonValue& sidecar) {
  std::string out = "{\"bench\":\"" + sidecar["bench"].AsString("?") + "\"";
  const JsonValue& meta = sidecar["meta"];
  out += ",\"git_sha\":\"" + meta["git_sha"].AsString("unknown") + "\"";
  out += ",\"written_utc\":\"" + meta["written_utc"].AsString("unknown") + "\"";
  out += ",\"runs\":{";
  bool first = true;
  std::string sharing;  // runs that carry group.* series, label -> ratio
  for (const auto& [key, run_ptr] : KeyedRuns(sidecar)) {
    const JsonValue& report = (*run_ptr)["report"];
    double headline = 0;
    if (report["events_per_sec"].is_number()) {
      headline = report["events_per_sec"].AsNumber();
    } else if (report["results"].is_number()) {
      headline = report["results"].AsNumber();
    }
    if (!first) out += ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", headline);
    out += "\"" + obs::JsonEscape(key) + "\":" + buf;
    const std::vector<GroupCost> groups = ExtractGroupCosts(MetricsOf(*run_ptr));
    if (!groups.empty()) {
      std::snprintf(buf, sizeof(buf), "%.6g", AggregateSharingRatio(groups));
      sharing += (sharing.empty() ? "" : ",") + std::string("\"") +
                 obs::JsonEscape(key) + "\":" + buf;
    }
  }
  out += "}";
  if (!sharing.empty()) out += ",\"sharing_ratio\":{" + sharing + "}";
  out += "}";
  return out;
}

// ------------------------------------------------------------- postmortem --

/// One node's flight-recorder dump (Cluster::DumpFlightRecorders /
/// FlightRecorder::DumpJson): identity, why the dump fired, ring counters,
/// and the retained control-plane events.
struct FlightDump {
  uint32_t node = 0;
  std::string role;
  std::string reason;
  double capacity = 0;
  double recorded = 0;
  double dropped = 0;
  std::vector<obs::FlightEvent> events;
};

/// Rebuilds a FlightDump from a parsed dump document. Events with an
/// unknown kind name are skipped (forward compatibility); a document
/// without the recorder envelope is rejected.
inline bool FlightDumpFromJson(const JsonValue& doc, FlightDump* out) {
  if (!doc.is_object() || !doc["recorder"].is_object()) return false;
  out->node = static_cast<uint32_t>(doc["node"].AsNumber());
  out->role = doc["role"].AsString("?");
  out->reason = doc["reason"].AsString("?");
  out->capacity = doc["recorder"]["capacity"].AsNumber();
  out->recorded = doc["recorder"]["recorded"].AsNumber();
  out->dropped = doc["recorder"]["dropped"].AsNumber();
  for (const JsonValue& e : doc["events"].array) {
    obs::FlightEvent ev;
    if (!obs::FlightKindFromName(e["kind"].AsString(), &ev.kind)) continue;
    ev.node_id = static_cast<uint32_t>(e["node"].AsNumber());
    obs::SpanRoleFromName(e["role"].AsString(), &ev.role);
    ev.a = static_cast<uint64_t>(e["a"].AsNumber());
    ev.b = static_cast<uint64_t>(e["b"].AsNumber());
    ev.virtual_ts = static_cast<Timestamp>(e["virtual_ts"].AsNumber());
    ev.real_ns = static_cast<int64_t>(e["real_ns"].AsNumber());
    out->events.push_back(ev);
  }
  return true;
}

inline std::string FormatFlightEvent(const obs::FlightEvent& e) {
  char vts[32];
  if (e.virtual_ts == kNoTimestamp) {
    std::snprintf(vts, sizeof(vts), "-");
  } else {
    std::snprintf(vts, sizeof(vts), "%lld",
                  static_cast<long long>(e.virtual_ts));
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%14lld ns  node %-3u %-12s %-17s a=%llu b=%llu vts=%s",
                static_cast<long long>(e.real_ns), e.node_id,
                obs::SpanRoleName(e.role), obs::KindName(e.kind),
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b), vts);
  std::string out = buf;
  if (e.kind == obs::FlightEventKind::kAnomaly) {
    out += std::string("  !! ") +
           obs::AnomalyName(static_cast<obs::AnomalyKind>(e.a));
  }
  return out;
}

/// Merges per-node dumps into one causally ordered timeline. Events sort by
/// real (steady-clock) time — the dumps come from one process, so real time
/// is a causal order; virtual time breaks ties. With an anomaly in the
/// merged stream the view pivots around the first one: the last
/// `tail_per_node` pre-anomaly events of every node (what each node was
/// doing going into the fault), then the full anomaly window. Without one,
/// it is a plain merged tail.
inline std::string Postmortem(const std::vector<FlightDump>& dumps,
                              size_t tail_per_node = 12) {
  std::string out;
  size_t total = 0;
  out += "postmortem over " + std::to_string(dumps.size()) + " dump(s)\n";
  for (const FlightDump& d : dumps) {
    out += "  node " + std::to_string(d.node) + " (" + d.role +
           "): reason=" + d.reason + " recorded=" + FormatDouble(d.recorded) +
           " dropped=" + FormatDouble(d.dropped) + "\n";
    total += d.events.size();
  }
  if (total == 0) {
    out += "no events retained\n";
    return out;
  }
  std::vector<obs::FlightEvent> all;
  all.reserve(total);
  for (const FlightDump& d : dumps) {
    all.insert(all.end(), d.events.begin(), d.events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const obs::FlightEvent& a, const obs::FlightEvent& b) {
                     if (a.real_ns != b.real_ns) return a.real_ns < b.real_ns;
                     return a.virtual_ts < b.virtual_ts;
                   });
  size_t first_anomaly = all.size();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].kind == obs::FlightEventKind::kAnomaly) {
      first_anomaly = i;
      break;
    }
  }
  if (first_anomaly < all.size()) {
    const obs::FlightEvent& a = all[first_anomaly];
    out += "\nfirst anomaly: " +
           std::string(obs::AnomalyName(static_cast<obs::AnomalyKind>(a.a))) +
           " against node " + std::to_string(a.node_id) + "\n";
    out += "\nlast " + std::to_string(tail_per_node) +
           " event(s) per node before the anomaly:\n";
    // Walk backwards from the anomaly keeping each node's most recent tail,
    // then re-emit in forward order.
    std::map<uint32_t, size_t> kept;
    std::vector<size_t> picked;
    for (size_t i = first_anomaly; i-- > 0;) {
      if (kept[all[i].node_id]++ < tail_per_node) picked.push_back(i);
    }
    for (size_t i = picked.size(); i-- > 0;) {
      out += FormatFlightEvent(all[picked[i]]) + "\n";
    }
    out += "\nanomaly window (every event from the first anomaly on):\n";
    for (size_t i = first_anomaly; i < all.size(); ++i) {
      out += FormatFlightEvent(all[i]) + "\n";
    }
  } else {
    out += "\nno anomaly recorded; merged tail (last " +
           std::to_string(tail_per_node) + " event(s) per node):\n";
    std::map<uint32_t, size_t> kept;
    std::vector<size_t> picked;
    for (size_t i = all.size(); i-- > 0;) {
      if (kept[all[i].node_id]++ < tail_per_node) picked.push_back(i);
    }
    for (size_t i = picked.size(); i-- > 0;) {
      out += FormatFlightEvent(all[picked[i]]) + "\n";
    }
  }
  return out;
}

/// Total retained events across dumps (the CLI's empty-timeline check).
inline size_t PostmortemEventCount(const std::vector<FlightDump>& dumps) {
  size_t total = 0;
  for (const FlightDump& d : dumps) total += d.events.size();
  return total;
}

}  // namespace desis::tools

#endif  // DESIS_TOOLS_INSPECT_LIB_H_
