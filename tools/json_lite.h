#ifndef DESIS_TOOLS_JSON_LITE_H_
#define DESIS_TOOLS_JSON_LITE_H_

// Minimal recursive-descent JSON reader for the desis-inspect toolchain.
// Parses the metrics sidecars the benches write (docs/METRICS.md) into a
// simple tree; no external dependencies, header-only so the tool and its
// tests share one implementation. Not a general-purpose library: numbers
// are doubles, no \uXXXX surrogate pairs, inputs are trusted files we
// wrote ourselves (errors still fail cleanly, never crash).

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace desis::tools {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  // Key order does not matter to any consumer; a map keeps lookups simple.
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member access; returns a shared null value when absent (so
  /// chained lookups like v["report"]["obs"]["metrics"] never throw).
  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue null_value;
    if (type != Type::kObject) return null_value;
    auto it = object.find(key);
    return it == object.end() ? null_value : it->second;
  }

  double AsNumber(double fallback = 0) const {
    return type == Type::kNumber ? number : fallback;
  }
  std::string AsString(const std::string& fallback = "") const {
    return type == Type::kString ? str : fallback;
  }
};

/// Parses `text`; returns false (and sets `error` if given) on malformed
/// input. Trailing garbage after the top-level value is an error.
class JsonParser {
 public:
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr) {
    JsonParser p(text);
    if (!p.ParseValue(out)) {
      if (error != nullptr) *error = p.error_;
      return false;
    }
    p.SkipWs();
    if (p.pos_ != text.size()) {
      if (error != nullptr) *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Basic-plane escapes only; enough for JsonEscape() output.
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (ConsumeWord("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (ConsumeWord("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (ConsumeWord("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    // Number.
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Fail("unexpected character");
    pos_ += static_cast<size_t>(end - begin);
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected object");
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected array");
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace desis::tools

#endif  // DESIS_TOOLS_JSON_LITE_H_
