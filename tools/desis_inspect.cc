// desis-inspect: offline toolchain over the metrics sidecars the benches
// write (docs/METRICS.md). Subcommands:
//
//   summary <sidecar.json>
//       Health & cost report: per-group sharing ratios, per-node
//       watermark-lag/backlog gauges, span counts.
//   diff <before.json> <after.json> [--threshold=0.15] [--stable-only]
//       Noise-aware comparison; exit 1 when a metric regressed beyond the
//       band (the CI perf-regression gate), 0 otherwise, 2 on usage/load
//       errors. --stable-only restricts to deterministic counters.
//   merge <sidecar.json> [out.json]
//       Cross-node Chrome trace (chrome://tracing / Perfetto): one global
//       async track per slice across local -> intermediate -> root,
//       retransmits included. Defaults to stdout.
//   history <sidecar.json> --append=<BENCH_history.jsonl>
//       Appends one provenance-stamped JSONL line with each run's headline
//       number (throughput or results).
//   postmortem <flight-dump.json...>
//       Merges per-node flight-recorder dumps (written automatically on a
//       failure, or via Cluster::DumpFlightRecorders) into one causally
//       ordered timeline: the last events each node recorded going into the
//       first anomaly, then the full anomaly window. Exit 1 when the merged
//       timeline is empty, 2 on load errors.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "inspect_lib.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: desis_inspect summary <sidecar.json>\n"
      "       desis_inspect diff <before.json> <after.json>"
      " [--threshold=0.15] [--stable-only]\n"
      "       desis_inspect merge <sidecar.json> [out.json]\n"
      "       desis_inspect history <sidecar.json>"
      " --append=<history.jsonl>\n"
      "       desis_inspect postmortem <flight-dump.json...>\n");
  return 2;
}

bool Load(const std::string& path, desis::tools::JsonValue* out) {
  std::string error;
  if (!desis::tools::LoadJsonFile(path, out, &error)) {
    std::fprintf(stderr, "desis_inspect: %s\n", error.c_str());
    return false;
  }
  return true;
}

int RunSummary(const std::string& path) {
  desis::tools::JsonValue sidecar;
  if (!Load(path, &sidecar)) return 2;
  std::fputs(desis::tools::Summarize(sidecar).c_str(), stdout);
  return 0;
}

int RunDiff(int argc, char** argv) {
  desis::tools::DiffOptions options;
  std::string paths[2];
  int npaths = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      options.threshold = std::atof(arg.c_str() + 12);
      if (options.threshold <= 0) {
        std::fprintf(stderr, "desis_inspect: bad --threshold\n");
        return 2;
      }
    } else if (arg == "--stable-only") {
      options.stable_only = true;
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      return Usage();
    }
  }
  if (npaths != 2) return Usage();
  desis::tools::JsonValue before, after;
  if (!Load(paths[0], &before) || !Load(paths[1], &after)) return 2;
  const desis::tools::DiffResult result =
      desis::tools::DiffSidecars(before, after, options);
  if (!result.comparable) {
    std::fprintf(stderr,
                 "desis_inspect: sidecars are not comparable "
                 "(different bench, obs_enabled, engine_shards, or "
                 "watchdog setting)\n");
    return 2;
  }
  std::fputs(desis::tools::FormatDiff(result, options).c_str(), stdout);
  return result.HasRegression() ? 1 : 0;
}

int RunMerge(const std::string& path, const char* out_path) {
  desis::tools::JsonValue sidecar;
  if (!Load(path, &sidecar)) return 2;
  const std::string trace = desis::tools::MergedChromeTrace(sidecar);
  if (out_path == nullptr) {
    std::fputs(trace.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "desis_inspect: cannot write %s\n", out_path);
    return 2;
  }
  std::fputs(trace.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("merged trace: %s\n", out_path);
  return 0;
}

int RunHistory(int argc, char** argv) {
  std::string sidecar_path;
  std::string append_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--append=", 0) == 0) {
      append_path = arg.substr(9);
    } else if (sidecar_path.empty()) {
      sidecar_path = arg;
    } else {
      return Usage();
    }
  }
  if (sidecar_path.empty() || append_path.empty()) return Usage();
  desis::tools::JsonValue sidecar;
  if (!Load(sidecar_path, &sidecar)) return 2;
  std::FILE* f = std::fopen(append_path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "desis_inspect: cannot append to %s\n",
                 append_path.c_str());
    return 2;
  }
  std::fprintf(f, "%s\n", desis::tools::HistoryLine(sidecar).c_str());
  std::fclose(f);
  std::printf("history: appended %s to %s\n", sidecar_path.c_str(),
              append_path.c_str());
  return 0;
}

int RunPostmortem(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::vector<desis::tools::FlightDump> dumps;
  for (int i = 0; i < argc; ++i) {
    desis::tools::JsonValue doc;
    if (!Load(argv[i], &doc)) return 2;
    desis::tools::FlightDump dump;
    if (!desis::tools::FlightDumpFromJson(doc, &dump)) {
      std::fprintf(stderr, "desis_inspect: %s is not a flight dump\n",
                   argv[i]);
      return 2;
    }
    dumps.push_back(std::move(dump));
  }
  std::fputs(desis::tools::Postmortem(dumps).c_str(), stdout);
  return desis::tools::PostmortemEventCount(dumps) == 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "summary" && argc == 3) return RunSummary(argv[2]);
  if (command == "diff") return RunDiff(argc - 2, argv + 2);
  if (command == "merge" && (argc == 3 || argc == 4)) {
    return RunMerge(argv[2], argc == 4 ? argv[3] : nullptr);
  }
  if (command == "history") return RunHistory(argc - 2, argv + 2);
  if (command == "postmortem") return RunPostmortem(argc - 2, argv + 2);
  return Usage();
}
